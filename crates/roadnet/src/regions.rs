//! Region partition of the city.
//!
//! The paper partitions Charlotte into the 7 City Council districts
//! (Figure 1) and reports per-region weather factors and flow rates. Here a
//! [`RegionPartition`] assigns every landmark to a region; a segment belongs
//! to the region of its tail landmark.

use crate::graph::{LandmarkId, RoadNetwork, SegmentId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a region (0-based; the paper's "Region 3" is `RegionId(2)`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RegionId(pub u8);

impl RegionId {
    /// The region's index into partition storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Human-facing 1-based label matching the paper's figures ("Region 3").
    pub fn label(self) -> u8 {
        self.0 + 1
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Region {}", self.label())
    }
}

/// Assignment of every landmark (and hence every segment) to a region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionPartition {
    num_regions: usize,
    of_landmark: Vec<RegionId>,
    of_segment: Vec<RegionId>,
}

impl RegionPartition {
    /// Builds a partition from a per-landmark assignment.
    ///
    /// # Panics
    ///
    /// Panics if `of_landmark` does not cover every landmark of `net`, if
    /// `num_regions == 0`, or if an assignment is out of range.
    pub fn new(net: &RoadNetwork, num_regions: usize, of_landmark: Vec<RegionId>) -> Self {
        assert!(num_regions > 0, "need at least one region");
        assert_eq!(
            of_landmark.len(),
            net.num_landmarks(),
            "assignment must cover every landmark"
        );
        assert!(
            of_landmark.iter().all(|r| r.index() < num_regions),
            "region id out of range"
        );
        let of_segment = net
            .segments()
            .map(|seg| of_landmark[seg.from.index()])
            .collect();
        Self {
            num_regions,
            of_landmark,
            of_segment,
        }
    }

    /// Number of regions in the partition.
    pub fn num_regions(&self) -> usize {
        self.num_regions
    }

    /// Iterator over all region ids.
    pub fn region_ids(&self) -> impl Iterator<Item = RegionId> {
        (0..self.num_regions as u8).map(RegionId)
    }

    /// Region of a landmark.
    ///
    /// # Panics
    ///
    /// Panics if `lm` is out of range.
    pub fn of_landmark(&self, lm: LandmarkId) -> RegionId {
        self.of_landmark[lm.index()]
    }

    /// Region of a segment (the region of its tail landmark).
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of range.
    pub fn of_segment(&self, seg: SegmentId) -> RegionId {
        self.of_segment[seg.index()]
    }

    /// All segments belonging to `region`.
    pub fn segments_in(&self, region: RegionId) -> Vec<SegmentId> {
        self.of_segment
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == region)
            .map(|(i, _)| SegmentId(i as u32))
            .collect()
    }

    /// All landmarks belonging to `region`.
    pub fn landmarks_in(&self, region: RegionId) -> Vec<LandmarkId> {
        self.of_landmark
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == region)
            .map(|(i, _)| LandmarkId(i as u32))
            .collect()
    }

    /// Number of segments per region.
    pub fn segment_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_regions];
        for r in &self.of_segment {
            counts[r.index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;
    use crate::graph::RoadClass;

    fn two_region_net() -> (RoadNetwork, RegionPartition) {
        let mut net = RoadNetwork::new();
        let a = net.add_landmark(GeoPoint::new(35.0, -80.0));
        let b = net.add_landmark(GeoPoint::new(35.01, -80.0));
        let c = net.add_landmark(GeoPoint::new(35.02, -80.0));
        net.add_two_way(a, b, RoadClass::Residential);
        net.add_two_way(b, c, RoadClass::Residential);
        let part = RegionPartition::new(&net, 2, vec![RegionId(0), RegionId(0), RegionId(1)]);
        (net, part)
    }

    #[test]
    fn segments_inherit_tail_region() {
        let (net, part) = two_region_net();
        for seg in net.segments() {
            assert_eq!(part.of_segment(seg.id), part.of_landmark(seg.from));
        }
    }

    #[test]
    fn membership_queries_are_consistent() {
        let (net, part) = two_region_net();
        let counts = part.segment_counts();
        assert_eq!(counts.iter().sum::<usize>(), net.num_segments());
        for r in part.region_ids() {
            assert_eq!(part.segments_in(r).len(), counts[r.index()]);
            for seg in part.segments_in(r) {
                assert_eq!(part.of_segment(seg), r);
            }
            for lm in part.landmarks_in(r) {
                assert_eq!(part.of_landmark(lm), r);
            }
        }
    }

    #[test]
    fn region_label_is_one_based() {
        assert_eq!(RegionId(2).label(), 3);
        assert_eq!(RegionId(2).to_string(), "Region 3");
    }

    #[test]
    #[should_panic(expected = "cover every landmark")]
    fn wrong_length_assignment_rejected() {
        let (net, _) = two_region_net();
        let _ = RegionPartition::new(&net, 2, vec![RegionId(0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_region_rejected() {
        let (net, _) = two_region_net();
        let _ = RegionPartition::new(&net, 2, vec![RegionId(0), RegionId(5), RegionId(1)]);
    }
}
