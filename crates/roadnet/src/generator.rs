//! Procedural city generation.
//!
//! The paper builds its road network from OpenStreetMap data for Charlotte,
//! NC, partitioned into the 7 City Council districts, with rescue teams
//! stationed at the city's hospitals. That data is not redistributable, so
//! [`CityConfig`] procedurally generates a Charlotte-like city instead: a
//! jittered grid of residential streets with arterial corridors and central
//! motorways, a radial 7-region partition whose central region is the dense
//! downtown (the paper's heavily-impacted "Region 3"), hospitals spread over
//! the regions, and a central dispatch depot.

use crate::geo::GeoPoint;
use crate::graph::{LandmarkId, RoadClass, RoadNetwork};
use crate::regions::{RegionId, RegionPartition};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Charlotte city center, used as the default generation origin.
pub const CHARLOTTE_CENTER: GeoPoint = GeoPoint {
    lat: 35.2271,
    lon: -80.8431,
};

/// Configuration for the procedural city generator.
///
/// # Examples
///
/// ```
/// use mobirescue_roadnet::generator::CityConfig;
///
/// let city = CityConfig::small().build(7);
/// assert_eq!(city.regions.num_regions(), 7);
/// assert!(!city.hospitals.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityConfig {
    /// Geographic center of the generated city.
    pub center: GeoPoint,
    /// Landmarks along the east-west axis.
    pub grid_width: usize,
    /// Landmarks along the north-south axis.
    pub grid_height: usize,
    /// Nominal spacing between adjacent landmarks, meters.
    pub spacing_m: f64,
    /// Uniform jitter applied to each landmark position, meters.
    pub position_jitter_m: f64,
    /// Number of regions in the partition (the paper uses 7).
    pub num_regions: usize,
    /// Radius of the central downtown region, meters.
    pub downtown_radius_m: f64,
    /// Every `arterial_every`-th row/column is an arterial corridor.
    pub arterial_every: usize,
    /// Hospitals generated per region.
    pub hospitals_per_region: usize,
    /// Fraction of residential street pairs generated as one-way streets.
    /// Strong connectivity is repaired afterwards, so any value in
    /// `[0, 1]` yields a drivable city. Defaults to `0.0` (all two-way).
    pub one_way_fraction: f64,
}

impl CityConfig {
    /// A Charlotte-scale configuration: ~1300 landmarks, ~5000 directed
    /// segments, 7 regions.
    pub fn charlotte_like() -> Self {
        Self {
            center: CHARLOTTE_CENTER,
            grid_width: 36,
            grid_height: 36,
            spacing_m: 600.0,
            position_jitter_m: 90.0,
            num_regions: 7,
            downtown_radius_m: 3_000.0,
            arterial_every: 4,
            hospitals_per_region: 2,
            one_way_fraction: 0.0,
        }
    }

    /// A small configuration for tests and quickstarts: 12×12 landmarks.
    pub fn small() -> Self {
        Self {
            grid_width: 12,
            grid_height: 12,
            spacing_m: 600.0,
            downtown_radius_m: 1_500.0,
            hospitals_per_region: 1,
            ..Self::charlotte_like()
        }
    }

    /// Generates the city deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the grid is smaller than 3×3, `num_regions < 2`, or
    /// `arterial_every == 0`.
    pub fn build(&self, seed: u64) -> City {
        assert!(
            self.grid_width >= 3 && self.grid_height >= 3,
            "grid must be at least 3x3"
        );
        assert!(self.num_regions >= 2, "need at least two regions");
        assert!(self.arterial_every > 0, "arterial_every must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6d6f_6269_7265_7363);
        let mut network = RoadNetwork::new();

        let half_w = (self.grid_width - 1) as f64 / 2.0;
        let half_h = (self.grid_height - 1) as f64 / 2.0;
        let mut grid = vec![vec![LandmarkId(0); self.grid_width]; self.grid_height];
        for (r, row) in grid.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                let east = (c as f64 - half_w) * self.spacing_m
                    + rng.random_range(-self.position_jitter_m..=self.position_jitter_m);
                let north = (r as f64 - half_h) * self.spacing_m
                    + rng.random_range(-self.position_jitter_m..=self.position_jitter_m);
                *cell = network.add_landmark(self.center.offset_m(east, north));
            }
        }

        let mid_r = self.grid_height / 2;
        let mid_c = self.grid_width / 2;
        let class_of = |r: usize, c: usize, horizontal: bool| -> RoadClass {
            if (horizontal && r == mid_r) || (!horizontal && c == mid_c) {
                RoadClass::Motorway
            } else if (horizontal && r.is_multiple_of(self.arterial_every))
                || (!horizontal && c.is_multiple_of(self.arterial_every))
            {
                RoadClass::Arterial
            } else {
                RoadClass::Residential
            }
        };
        // Residential streets may come out one-way; the skipped reverse
        // directions are kept as repair candidates.
        let mut skipped_reverses: Vec<(LandmarkId, LandmarkId, RoadClass)> = Vec::new();
        let mut add_street = |network: &mut RoadNetwork,
                              rng: &mut StdRng,
                              a: LandmarkId,
                              b: LandmarkId,
                              class: RoadClass| {
            let one_way = class == RoadClass::Residential
                && self.one_way_fraction > 0.0
                && rng.random_bool(self.one_way_fraction.clamp(0.0, 1.0));
            if one_way {
                // Direction chosen at random.
                let (from, to) = if rng.random_bool(0.5) { (a, b) } else { (b, a) };
                network.add_segment(from, to, class);
                skipped_reverses.push((to, from, class));
            } else {
                network.add_two_way(a, b, class);
            }
        };
        for r in 0..self.grid_height {
            for c in 0..self.grid_width {
                if c + 1 < self.grid_width {
                    add_street(
                        &mut network,
                        &mut rng,
                        grid[r][c],
                        grid[r][c + 1],
                        class_of(r, c, true),
                    );
                }
                if r + 1 < self.grid_height {
                    add_street(
                        &mut network,
                        &mut rng,
                        grid[r][c],
                        grid[r + 1][c],
                        class_of(r, c, false),
                    );
                }
            }
        }
        self.repair_connectivity(&mut network, skipped_reverses);

        let regions = self.partition(&network);
        let hospitals = self.place_hospitals(&network, &regions, &mut rng);
        let depot = network
            .nearest_landmark(self.center)
            .expect("generated network is non-empty");

        City {
            network,
            regions,
            hospitals,
            depot,
            center: self.center,
        }
    }

    /// Restores strong connectivity after one-way conversion: while the
    /// network has more than one strongly connected component, add back the
    /// reverse of every one-way street whose endpoints lie in different
    /// components. Terminates because each pass strictly merges components
    /// (the all-two-way grid is strongly connected).
    fn repair_connectivity(
        &self,
        network: &mut RoadNetwork,
        mut candidates: Vec<(LandmarkId, LandmarkId, RoadClass)>,
    ) {
        use crate::connectivity::strongly_connected_components;
        use crate::routing::FreeFlow;
        loop {
            let (components, count) = strongly_connected_components(network, &FreeFlow);
            if count <= 1 || candidates.is_empty() {
                break;
            }
            let mut progressed = false;
            candidates.retain(|&(from, to, class)| {
                if components[from.index()] != components[to.index()] {
                    network.add_segment(from, to, class);
                    progressed = true;
                    false
                } else {
                    true
                }
            });
            if !progressed {
                // Remaining candidates all lie within components; restore
                // everything left to guarantee connectivity.
                for (from, to, class) in candidates.drain(..) {
                    network.add_segment(from, to, class);
                }
            }
        }
    }

    /// Radial partition: a central downtown disk plus equal angular sectors.
    fn partition(&self, network: &RoadNetwork) -> RegionPartition {
        let downtown = downtown_region_index(self.num_regions);
        let sectors = self.num_regions - 1;
        let assignment = network
            .landmarks()
            .map(|lm| {
                let (east, north) = lm.position.local_xy_m(self.center);
                if (east * east + north * north).sqrt() <= self.downtown_radius_m {
                    return RegionId(downtown as u8);
                }
                let angle = north.atan2(east).rem_euclid(std::f64::consts::TAU);
                let mut sector =
                    ((angle / std::f64::consts::TAU) * sectors as f64).floor() as usize;
                if sector >= sectors {
                    sector = sectors - 1;
                }
                // Skip over the downtown index so sector regions keep their
                // own ids.
                let id = if sector >= downtown {
                    sector + 1
                } else {
                    sector
                };
                RegionId(id as u8)
            })
            .collect();
        RegionPartition::new(network, self.num_regions, assignment)
    }

    /// One hospital near each region centroid, plus extras at random
    /// landmarks of the region.
    fn place_hospitals(
        &self,
        network: &RoadNetwork,
        regions: &RegionPartition,
        rng: &mut StdRng,
    ) -> Vec<LandmarkId> {
        let mut hospitals = Vec::new();
        for region in regions.region_ids() {
            let members = regions.landmarks_in(region);
            if members.is_empty() {
                continue;
            }
            let centroid_lat = members
                .iter()
                .map(|&lm| network.landmark(lm).position.lat)
                .sum::<f64>()
                / members.len() as f64;
            let centroid_lon = members
                .iter()
                .map(|&lm| network.landmark(lm).position.lon)
                .sum::<f64>()
                / members.len() as f64;
            let centroid = GeoPoint::new(centroid_lat, centroid_lon);
            let near_centroid = *members
                .iter()
                .min_by(|a, b| {
                    let da = network.landmark(**a).position.distance_m(centroid);
                    let db = network.landmark(**b).position.distance_m(centroid);
                    da.partial_cmp(&db).expect("distances are never NaN")
                })
                .expect("region is non-empty");
            hospitals.push(near_centroid);
            for _ in 1..self.hospitals_per_region {
                let pick = members[rng.random_range(0..members.len())];
                if !hospitals.contains(&pick) {
                    hospitals.push(pick);
                }
            }
        }
        hospitals
    }
}

/// Index of the downtown region: 2 (the paper's "Region 3") when there are at
/// least three regions, otherwise 0.
pub fn downtown_region_index(num_regions: usize) -> usize {
    if num_regions > 2 {
        2
    } else {
        0
    }
}

/// A generated city: network, region partition, hospitals and dispatch depot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct City {
    /// The road network `G = (V, E)`.
    pub network: RoadNetwork,
    /// Region partition (downtown = [`City::downtown_region`]).
    pub regions: RegionPartition,
    /// Landmarks hosting hospitals (rescue destinations and team bases).
    pub hospitals: Vec<LandmarkId>,
    /// The rescue-team dispatching center.
    pub depot: LandmarkId,
    /// Geographic center used during generation.
    pub center: GeoPoint,
}

impl City {
    /// The dense central region — the paper's most-impacted "Region 3".
    pub fn downtown_region(&self) -> RegionId {
        RegionId(downtown_region_index(self.regions.num_regions()) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{FreeFlow, Router};

    #[test]
    fn build_is_deterministic() {
        let a = CityConfig::small().build(1);
        let b = CityConfig::small().build(1);
        assert_eq!(a.network.num_landmarks(), b.network.num_landmarks());
        assert_eq!(
            a.network.landmark(LandmarkId(5)).position,
            b.network.landmark(LandmarkId(5)).position
        );
        assert_eq!(a.hospitals, b.hospitals);
    }

    #[test]
    fn different_seeds_differ() {
        let a = CityConfig::small().build(1);
        let b = CityConfig::small().build(2);
        assert_ne!(
            a.network.landmark(LandmarkId(5)).position,
            b.network.landmark(LandmarkId(5)).position
        );
    }

    #[test]
    fn grid_is_strongly_connected() {
        let city = CityConfig::small().build(3);
        let router = Router::new(&city.network);
        let sp = router.shortest_paths_from(&FreeFlow, city.depot);
        for lm in city.network.landmark_ids() {
            assert!(
                sp.travel_time_s(lm).is_some(),
                "{lm} unreachable from depot"
            );
        }
        // And back: reachability of depot from an arbitrary far corner.
        let corner = LandmarkId(0);
        let back = router.shortest_path(&FreeFlow, corner, city.depot);
        assert!(back.is_some());
    }

    #[test]
    fn every_region_is_populated() {
        let city = CityConfig::charlotte_like().build(4);
        for r in city.regions.region_ids() {
            assert!(
                !city.regions.landmarks_in(r).is_empty(),
                "{r} has no landmarks"
            );
        }
    }

    #[test]
    fn downtown_region_is_central() {
        let city = CityConfig::charlotte_like().build(5);
        let downtown = city.downtown_region();
        for lm in city.regions.landmarks_in(downtown) {
            let (e, n) = city.network.landmark(lm).position.local_xy_m(city.center);
            let dist = (e * e + n * n).sqrt();
            assert!(
                dist <= CityConfig::charlotte_like().downtown_radius_m + 300.0,
                "downtown landmark {dist} m from center"
            );
        }
    }

    #[test]
    fn hospitals_cover_regions() {
        let city = CityConfig::charlotte_like().build(6);
        let mut covered = vec![false; city.regions.num_regions()];
        for &h in &city.hospitals {
            covered[city.regions.of_landmark(h).index()] = true;
        }
        assert!(
            covered.iter().all(|&c| c),
            "regions without hospital: {covered:?}"
        );
    }

    #[test]
    fn motorways_exist_and_are_central() {
        let city = CityConfig::small().build(7);
        let motorways: Vec<_> = city
            .network
            .segments()
            .filter(|s| s.class == RoadClass::Motorway)
            .collect();
        assert!(!motorways.is_empty());
    }

    #[test]
    fn depot_is_near_center() {
        let city = CityConfig::charlotte_like().build(8);
        let d = city
            .network
            .landmark(city.depot)
            .position
            .distance_m(city.center);
        assert!(d < 1_000.0, "depot {d} m from center");
    }

    #[test]
    #[should_panic(expected = "at least 3x3")]
    fn tiny_grid_rejected() {
        let mut cfg = CityConfig::small();
        cfg.grid_width = 2;
        let _ = cfg.build(0);
    }
}

#[cfg(test)]
mod one_way_tests {
    use super::*;
    use crate::connectivity::strongly_connected_components;
    use crate::routing::FreeFlow;
    use std::collections::HashSet;

    #[test]
    fn one_way_streets_keep_the_city_strongly_connected() {
        for seed in [1u64, 2, 3] {
            let mut cfg = CityConfig::small();
            cfg.one_way_fraction = 0.3;
            let city = cfg.build(seed);
            let (_, count) = strongly_connected_components(&city.network, &FreeFlow);
            assert_eq!(count, 1, "seed {seed}: city fragmented");
            // And some streets really are one-way.
            let pairs: HashSet<(u32, u32)> = city
                .network
                .segments()
                .map(|s| (s.from.0, s.to.0))
                .collect();
            let one_ways = city
                .network
                .segments()
                .filter(|s| !pairs.contains(&(s.to.0, s.from.0)))
                .count();
            assert!(
                one_ways > 5,
                "seed {seed}: only {one_ways} one-way streets survived"
            );
        }
    }

    #[test]
    fn zero_fraction_builds_all_two_way() {
        let city = CityConfig::small().build(4);
        let pairs: HashSet<(u32, u32)> = city
            .network
            .segments()
            .map(|s| (s.from.0, s.to.0))
            .collect();
        for s in city.network.segments() {
            assert!(
                pairs.contains(&(s.to.0, s.from.0)),
                "{} has no reverse",
                s.id
            );
        }
    }

    #[test]
    fn full_fraction_still_drivable() {
        let mut cfg = CityConfig::small();
        cfg.one_way_fraction = 1.0;
        let city = cfg.build(5);
        let (_, count) = strongly_connected_components(&city.network, &FreeFlow);
        assert_eq!(count, 1);
    }
}
