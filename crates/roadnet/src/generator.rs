//! Procedural city generation.
//!
//! The paper builds its road network from OpenStreetMap data for Charlotte,
//! NC, partitioned into the 7 City Council districts, with rescue teams
//! stationed at the city's hospitals. That data is not redistributable, so
//! [`CityConfig`] procedurally generates a Charlotte-like city instead: a
//! jittered grid of residential streets with arterial corridors and central
//! motorways, a radial 7-region partition whose central region is the dense
//! downtown (the paper's heavily-impacted "Region 3"), hospitals spread over
//! the regions, and a central dispatch depot.

use crate::geo::GeoPoint;
use crate::graph::{LandmarkId, RoadClass, RoadNetwork};
use crate::regions::{RegionId, RegionPartition};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Charlotte city center, used as the default generation origin.
pub const CHARLOTTE_CENTER: GeoPoint = GeoPoint {
    lat: 35.2271,
    lon: -80.8431,
};

/// Configuration for the procedural city generator.
///
/// # Examples
///
/// ```
/// use mobirescue_roadnet::generator::CityConfig;
///
/// let city = CityConfig::small().build(7);
/// assert_eq!(city.regions.num_regions(), 7);
/// assert!(!city.hospitals.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityConfig {
    /// Geographic center of the generated city.
    pub center: GeoPoint,
    /// Landmarks along the east-west axis.
    pub grid_width: usize,
    /// Landmarks along the north-south axis.
    pub grid_height: usize,
    /// Nominal spacing between adjacent landmarks, meters.
    pub spacing_m: f64,
    /// Uniform jitter applied to each landmark position, meters.
    pub position_jitter_m: f64,
    /// Number of regions in the partition (the paper uses 7).
    pub num_regions: usize,
    /// Radius of the central downtown region, meters.
    pub downtown_radius_m: f64,
    /// Every `arterial_every`-th row/column is an arterial corridor.
    pub arterial_every: usize,
    /// Hospitals generated per region.
    pub hospitals_per_region: usize,
    /// Fraction of residential street pairs generated as one-way streets.
    /// Strong connectivity is repaired afterwards, so any value in
    /// `[0, 1]` yields a drivable city. Defaults to `0.0` (all two-way).
    pub one_way_fraction: f64,
    /// Districts along the east-west axis. With `districts_x * districts_y
    /// == 1` (the default) the generator emits the classic single-district
    /// grid; more districts tile `districts_x × districts_y` copies of the
    /// grid, each with its own arterial/motorway pattern, joined by
    /// motorway/arterial connectors across the district gaps — the
    /// metro-scale "grid-plus-arterials" layout.
    pub districts_x: usize,
    /// Districts along the north-south axis.
    pub districts_y: usize,
    /// Gap between adjacent districts, meters (spanned by the connectors).
    pub district_gap_m: f64,
}

impl CityConfig {
    /// A Charlotte-scale configuration: ~1300 landmarks, ~5000 directed
    /// segments, 7 regions.
    pub fn charlotte_like() -> Self {
        Self {
            center: CHARLOTTE_CENTER,
            grid_width: 36,
            grid_height: 36,
            spacing_m: 600.0,
            position_jitter_m: 90.0,
            num_regions: 7,
            downtown_radius_m: 3_000.0,
            arterial_every: 4,
            hospitals_per_region: 2,
            one_way_fraction: 0.0,
            districts_x: 1,
            districts_y: 1,
            district_gap_m: 0.0,
        }
    }

    /// A small configuration for tests and quickstarts: 12×12 landmarks.
    pub fn small() -> Self {
        Self {
            grid_width: 12,
            grid_height: 12,
            spacing_m: 600.0,
            downtown_radius_m: 1_500.0,
            hospitals_per_region: 1,
            ..Self::charlotte_like()
        }
    }

    /// A metro-scale configuration: 2×2 districts of 80×80 landmarks at
    /// 300 m spacing — 25,600 landmarks and ≈101k directed segments, the
    /// "city of millions" substrate.
    pub fn metro() -> Self {
        Self {
            grid_width: 80,
            grid_height: 80,
            spacing_m: 300.0,
            position_jitter_m: 60.0,
            num_regions: 13,
            downtown_radius_m: 4_000.0,
            hospitals_per_region: 3,
            districts_x: 2,
            districts_y: 2,
            district_gap_m: 1_200.0,
            ..Self::charlotte_like()
        }
    }

    /// A multi-city configuration: 3×2 well-separated 48×48 cities joined
    /// by long motorway/arterial connectors (≈54k directed segments).
    pub fn multi_city() -> Self {
        Self {
            grid_width: 48,
            grid_height: 48,
            spacing_m: 400.0,
            position_jitter_m: 70.0,
            num_regions: 9,
            downtown_radius_m: 3_000.0,
            hospitals_per_region: 2,
            districts_x: 3,
            districts_y: 2,
            district_gap_m: 6_000.0,
            ..Self::charlotte_like()
        }
    }

    /// Total districts in the layout.
    pub fn num_districts(&self) -> usize {
        self.districts_x * self.districts_y
    }

    /// Generates the city deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the grid is smaller than 3×3, `num_regions < 2`, or
    /// `arterial_every == 0`.
    pub fn build(&self, seed: u64) -> City {
        assert!(
            self.grid_width >= 3 && self.grid_height >= 3,
            "grid must be at least 3x3"
        );
        assert!(self.num_regions >= 2, "need at least two regions");
        assert!(self.arterial_every > 0, "arterial_every must be positive");
        assert!(
            self.districts_x >= 1 && self.districts_y >= 1,
            "district counts must be positive"
        );
        if self.num_districts() > 1 {
            // The metro path draws from its own RNG stream; the
            // single-district path below is byte-for-byte the original
            // generator, so every existing fixture stays pinned.
            return self.build_districts(seed);
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6d6f_6269_7265_7363);
        let mut network = RoadNetwork::new();

        let half_w = (self.grid_width - 1) as f64 / 2.0;
        let half_h = (self.grid_height - 1) as f64 / 2.0;
        let mut grid = vec![vec![LandmarkId(0); self.grid_width]; self.grid_height];
        for (r, row) in grid.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                let east = (c as f64 - half_w) * self.spacing_m
                    + rng.random_range(-self.position_jitter_m..=self.position_jitter_m);
                let north = (r as f64 - half_h) * self.spacing_m
                    + rng.random_range(-self.position_jitter_m..=self.position_jitter_m);
                *cell = network.add_landmark(self.center.offset_m(east, north));
            }
        }

        let mid_r = self.grid_height / 2;
        let mid_c = self.grid_width / 2;
        let class_of = |r: usize, c: usize, horizontal: bool| -> RoadClass {
            if (horizontal && r == mid_r) || (!horizontal && c == mid_c) {
                RoadClass::Motorway
            } else if (horizontal && r.is_multiple_of(self.arterial_every))
                || (!horizontal && c.is_multiple_of(self.arterial_every))
            {
                RoadClass::Arterial
            } else {
                RoadClass::Residential
            }
        };
        // Residential streets may come out one-way; the skipped reverse
        // directions are kept as repair candidates.
        let mut skipped_reverses: Vec<(LandmarkId, LandmarkId, RoadClass)> = Vec::new();
        let mut add_street = |network: &mut RoadNetwork,
                              rng: &mut StdRng,
                              a: LandmarkId,
                              b: LandmarkId,
                              class: RoadClass| {
            let one_way = class == RoadClass::Residential
                && self.one_way_fraction > 0.0
                && rng.random_bool(self.one_way_fraction.clamp(0.0, 1.0));
            if one_way {
                // Direction chosen at random.
                let (from, to) = if rng.random_bool(0.5) { (a, b) } else { (b, a) };
                network.add_segment(from, to, class);
                skipped_reverses.push((to, from, class));
            } else {
                network.add_two_way(a, b, class);
            }
        };
        for r in 0..self.grid_height {
            for c in 0..self.grid_width {
                if c + 1 < self.grid_width {
                    add_street(
                        &mut network,
                        &mut rng,
                        grid[r][c],
                        grid[r][c + 1],
                        class_of(r, c, true),
                    );
                }
                if r + 1 < self.grid_height {
                    add_street(
                        &mut network,
                        &mut rng,
                        grid[r][c],
                        grid[r + 1][c],
                        class_of(r, c, false),
                    );
                }
            }
        }
        self.repair_connectivity(&mut network, skipped_reverses);

        let regions = self.partition(&network);
        let hospitals = self.place_hospitals(&network, &regions, &mut rng);
        let depot = network
            .nearest_landmark(self.center)
            .expect("generated network is non-empty");

        City {
            network,
            regions,
            hospitals,
            depot,
            center: self.center,
        }
    }

    /// The multi-district metro generator: `districts_x × districts_y`
    /// jittered grids (each with the per-district arterial pattern and
    /// central motorway cross), joined across the district gaps by two-way
    /// connectors on every arterial row/column (motorway on the central
    /// row/column). Connectors on every district boundary keep the metro
    /// strongly connected whenever each district is.
    // Index loops are the natural shape here: the connector passes pair
    // each district with its eastern/southern neighbor (`grids[dy][dx]`
    // vs `grids[dy][dx + 1]`), which iterators cannot express cleanly.
    #[allow(clippy::needless_range_loop)]
    fn build_districts(&self, seed: u64) -> City {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6d65_7472_6f63_6974);
        let mut network = RoadNetwork::new();
        let span_x = (self.grid_width - 1) as f64 * self.spacing_m;
        let span_y = (self.grid_height - 1) as f64 * self.spacing_m;
        let pitch_x = span_x + self.district_gap_m;
        let pitch_y = span_y + self.district_gap_m;
        // Center the whole metro on `self.center`.
        let origin_e = -(span_x + (self.districts_x - 1) as f64 * pitch_x) / 2.0;
        let origin_n = -(span_y + (self.districts_y - 1) as f64 * pitch_y) / 2.0;

        let mid_r = self.grid_height / 2;
        let mid_c = self.grid_width / 2;
        let class_of = |r: usize, c: usize, horizontal: bool| -> RoadClass {
            if (horizontal && r == mid_r) || (!horizontal && c == mid_c) {
                RoadClass::Motorway
            } else if (horizontal && r.is_multiple_of(self.arterial_every))
                || (!horizontal && c.is_multiple_of(self.arterial_every))
            {
                RoadClass::Arterial
            } else {
                RoadClass::Residential
            }
        };
        // Row `r` hosts an inter-district connector (arterial grid line or
        // the central motorway).
        let connector_row =
            |r: usize| -> bool { r.is_multiple_of(self.arterial_every) || r == mid_r };
        let connector_class = |r: usize| -> RoadClass {
            if r == mid_r {
                RoadClass::Motorway
            } else {
                RoadClass::Arterial
            }
        };

        let mut skipped_reverses: Vec<(LandmarkId, LandmarkId, RoadClass)> = Vec::new();
        // grids[dy][dx][r][c]
        let mut grids: Vec<Vec<Vec<Vec<LandmarkId>>>> =
            vec![vec![Vec::new(); self.districts_x]; self.districts_y];
        for dy in 0..self.districts_y {
            for dx in 0..self.districts_x {
                let base_e = origin_e + dx as f64 * pitch_x;
                let base_n = origin_n + dy as f64 * pitch_y;
                let mut grid = vec![vec![LandmarkId(0); self.grid_width]; self.grid_height];
                for (r, row) in grid.iter_mut().enumerate() {
                    for (c, cell) in row.iter_mut().enumerate() {
                        let east = base_e
                            + c as f64 * self.spacing_m
                            + rng.random_range(-self.position_jitter_m..=self.position_jitter_m);
                        let north = base_n
                            + r as f64 * self.spacing_m
                            + rng.random_range(-self.position_jitter_m..=self.position_jitter_m);
                        *cell = network.add_landmark(self.center.offset_m(east, north));
                    }
                }
                for r in 0..self.grid_height {
                    for c in 0..self.grid_width {
                        if c + 1 < self.grid_width {
                            self.add_street(
                                &mut network,
                                &mut rng,
                                &mut skipped_reverses,
                                grid[r][c],
                                grid[r][c + 1],
                                class_of(r, c, true),
                            );
                        }
                        if r + 1 < self.grid_height {
                            self.add_street(
                                &mut network,
                                &mut rng,
                                &mut skipped_reverses,
                                grid[r][c],
                                grid[r + 1][c],
                                class_of(r, c, false),
                            );
                        }
                    }
                }
                grids[dy][dx] = grid;
            }
        }
        // East-west connectors between horizontally adjacent districts.
        for dy in 0..self.districts_y {
            for dx in 0..self.districts_x.saturating_sub(1) {
                for r in 0..self.grid_height {
                    if connector_row(r) {
                        let a = grids[dy][dx][r][self.grid_width - 1];
                        let b = grids[dy][dx + 1][r][0];
                        network.add_two_way(a, b, connector_class(r));
                    }
                }
            }
        }
        // North-south connectors between vertically adjacent districts.
        for dy in 0..self.districts_y.saturating_sub(1) {
            for dx in 0..self.districts_x {
                for c in 0..self.grid_width {
                    if connector_row(c) {
                        let a = grids[dy][dx][self.grid_height - 1][c];
                        let b = grids[dy + 1][dx][0][c];
                        network.add_two_way(a, b, connector_class(c));
                    }
                }
            }
        }
        self.repair_connectivity(&mut network, skipped_reverses);

        let regions = self.partition(&network);
        let hospitals = self.place_hospitals(&network, &regions, &mut rng);
        let depot = network
            .nearest_landmark(self.center)
            .expect("generated network is non-empty");

        City {
            network,
            regions,
            hospitals,
            depot,
            center: self.center,
        }
    }

    /// Adds one street between `a` and `b`, possibly one-way (residential
    /// only), recording skipped reverse directions as connectivity-repair
    /// candidates.
    fn add_street(
        &self,
        network: &mut RoadNetwork,
        rng: &mut StdRng,
        skipped_reverses: &mut Vec<(LandmarkId, LandmarkId, RoadClass)>,
        a: LandmarkId,
        b: LandmarkId,
        class: RoadClass,
    ) {
        let one_way = class == RoadClass::Residential
            && self.one_way_fraction > 0.0
            && rng.random_bool(self.one_way_fraction.clamp(0.0, 1.0));
        if one_way {
            let (from, to) = if rng.random_bool(0.5) { (a, b) } else { (b, a) };
            network.add_segment(from, to, class);
            skipped_reverses.push((to, from, class));
        } else {
            network.add_two_way(a, b, class);
        }
    }

    /// Restores strong connectivity after one-way conversion: while the
    /// network has more than one strongly connected component, add back the
    /// reverse of every one-way street whose endpoints lie in different
    /// components. Terminates because each pass strictly merges components
    /// (the all-two-way grid is strongly connected).
    fn repair_connectivity(
        &self,
        network: &mut RoadNetwork,
        mut candidates: Vec<(LandmarkId, LandmarkId, RoadClass)>,
    ) {
        use crate::connectivity::strongly_connected_components;
        use crate::routing::FreeFlow;
        loop {
            let (components, count) = strongly_connected_components(network, &FreeFlow);
            if count <= 1 || candidates.is_empty() {
                break;
            }
            let mut progressed = false;
            candidates.retain(|&(from, to, class)| {
                if components[from.index()] != components[to.index()] {
                    network.add_segment(from, to, class);
                    progressed = true;
                    false
                } else {
                    true
                }
            });
            if !progressed {
                // Remaining candidates all lie within components; restore
                // everything left to guarantee connectivity.
                for (from, to, class) in candidates.drain(..) {
                    network.add_segment(from, to, class);
                }
            }
        }
    }

    /// Radial partition: a central downtown disk plus equal angular sectors.
    fn partition(&self, network: &RoadNetwork) -> RegionPartition {
        let downtown = downtown_region_index(self.num_regions);
        let sectors = self.num_regions - 1;
        let assignment = network
            .landmarks()
            .map(|lm| {
                let (east, north) = lm.position.local_xy_m(self.center);
                if (east * east + north * north).sqrt() <= self.downtown_radius_m {
                    return RegionId(downtown as u8);
                }
                let angle = north.atan2(east).rem_euclid(std::f64::consts::TAU);
                let mut sector =
                    ((angle / std::f64::consts::TAU) * sectors as f64).floor() as usize;
                if sector >= sectors {
                    sector = sectors - 1;
                }
                // Skip over the downtown index so sector regions keep their
                // own ids.
                let id = if sector >= downtown {
                    sector + 1
                } else {
                    sector
                };
                RegionId(id as u8)
            })
            .collect();
        RegionPartition::new(network, self.num_regions, assignment)
    }

    /// One hospital near each region centroid, plus extras at random
    /// landmarks of the region.
    fn place_hospitals(
        &self,
        network: &RoadNetwork,
        regions: &RegionPartition,
        rng: &mut StdRng,
    ) -> Vec<LandmarkId> {
        let mut hospitals = Vec::new();
        for region in regions.region_ids() {
            let members = regions.landmarks_in(region);
            if members.is_empty() {
                continue;
            }
            let centroid_lat = members
                .iter()
                .map(|&lm| network.landmark(lm).position.lat)
                .sum::<f64>()
                / members.len() as f64;
            let centroid_lon = members
                .iter()
                .map(|&lm| network.landmark(lm).position.lon)
                .sum::<f64>()
                / members.len() as f64;
            let centroid = GeoPoint::new(centroid_lat, centroid_lon);
            let near_centroid = *members
                .iter()
                .min_by(|a, b| {
                    let da = network.landmark(**a).position.distance_m(centroid);
                    let db = network.landmark(**b).position.distance_m(centroid);
                    da.partial_cmp(&db).expect("distances are never NaN")
                })
                .expect("region is non-empty");
            hospitals.push(near_centroid);
            for _ in 1..self.hospitals_per_region {
                let pick = members[rng.random_range(0..members.len())];
                if !hospitals.contains(&pick) {
                    hospitals.push(pick);
                }
            }
        }
        hospitals
    }
}

/// Index of the downtown region: 2 (the paper's "Region 3") when there are at
/// least three regions, otherwise 0.
pub fn downtown_region_index(num_regions: usize) -> usize {
    if num_regions > 2 {
        2
    } else {
        0
    }
}

/// A generated city: network, region partition, hospitals and dispatch depot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct City {
    /// The road network `G = (V, E)`.
    pub network: RoadNetwork,
    /// Region partition (downtown = [`City::downtown_region`]).
    pub regions: RegionPartition,
    /// Landmarks hosting hospitals (rescue destinations and team bases).
    pub hospitals: Vec<LandmarkId>,
    /// The rescue-team dispatching center.
    pub depot: LandmarkId,
    /// Geographic center used during generation.
    pub center: GeoPoint,
}

impl City {
    /// The dense central region — the paper's most-impacted "Region 3".
    pub fn downtown_region(&self) -> RegionId {
        RegionId(downtown_region_index(self.regions.num_regions()) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{FreeFlow, Router};

    #[test]
    fn build_is_deterministic() {
        let a = CityConfig::small().build(1);
        let b = CityConfig::small().build(1);
        assert_eq!(a.network.num_landmarks(), b.network.num_landmarks());
        assert_eq!(
            a.network.landmark(LandmarkId(5)).position,
            b.network.landmark(LandmarkId(5)).position
        );
        assert_eq!(a.hospitals, b.hospitals);
    }

    #[test]
    fn different_seeds_differ() {
        let a = CityConfig::small().build(1);
        let b = CityConfig::small().build(2);
        assert_ne!(
            a.network.landmark(LandmarkId(5)).position,
            b.network.landmark(LandmarkId(5)).position
        );
    }

    #[test]
    fn grid_is_strongly_connected() {
        let city = CityConfig::small().build(3);
        let router = Router::new(&city.network);
        let sp = router.shortest_paths_from(&FreeFlow, city.depot);
        for lm in city.network.landmark_ids() {
            assert!(
                sp.travel_time_s(lm).is_some(),
                "{lm} unreachable from depot"
            );
        }
        // And back: reachability of depot from an arbitrary far corner.
        let corner = LandmarkId(0);
        let back = router.shortest_path(&FreeFlow, corner, city.depot);
        assert!(back.is_some());
    }

    #[test]
    fn every_region_is_populated() {
        let city = CityConfig::charlotte_like().build(4);
        for r in city.regions.region_ids() {
            assert!(
                !city.regions.landmarks_in(r).is_empty(),
                "{r} has no landmarks"
            );
        }
    }

    #[test]
    fn downtown_region_is_central() {
        let city = CityConfig::charlotte_like().build(5);
        let downtown = city.downtown_region();
        for lm in city.regions.landmarks_in(downtown) {
            let (e, n) = city.network.landmark(lm).position.local_xy_m(city.center);
            let dist = (e * e + n * n).sqrt();
            assert!(
                dist <= CityConfig::charlotte_like().downtown_radius_m + 300.0,
                "downtown landmark {dist} m from center"
            );
        }
    }

    #[test]
    fn hospitals_cover_regions() {
        let city = CityConfig::charlotte_like().build(6);
        let mut covered = vec![false; city.regions.num_regions()];
        for &h in &city.hospitals {
            covered[city.regions.of_landmark(h).index()] = true;
        }
        assert!(
            covered.iter().all(|&c| c),
            "regions without hospital: {covered:?}"
        );
    }

    #[test]
    fn motorways_exist_and_are_central() {
        let city = CityConfig::small().build(7);
        let motorways: Vec<_> = city
            .network
            .segments()
            .filter(|s| s.class == RoadClass::Motorway)
            .collect();
        assert!(!motorways.is_empty());
    }

    #[test]
    fn depot_is_near_center() {
        let city = CityConfig::charlotte_like().build(8);
        let d = city
            .network
            .landmark(city.depot)
            .position
            .distance_m(city.center);
        assert!(d < 1_000.0, "depot {d} m from center");
    }

    #[test]
    #[should_panic(expected = "at least 3x3")]
    fn tiny_grid_rejected() {
        let mut cfg = CityConfig::small();
        cfg.grid_width = 2;
        let _ = cfg.build(0);
    }
}

#[cfg(test)]
mod one_way_tests {
    use super::*;
    use crate::connectivity::strongly_connected_components;
    use crate::routing::FreeFlow;
    use std::collections::HashSet;

    #[test]
    fn one_way_streets_keep_the_city_strongly_connected() {
        for seed in [1u64, 2, 3] {
            let mut cfg = CityConfig::small();
            cfg.one_way_fraction = 0.3;
            let city = cfg.build(seed);
            let (_, count) = strongly_connected_components(&city.network, &FreeFlow);
            assert_eq!(count, 1, "seed {seed}: city fragmented");
            // And some streets really are one-way.
            let pairs: HashSet<(u32, u32)> = city
                .network
                .segments()
                .map(|s| (s.from.0, s.to.0))
                .collect();
            let one_ways = city
                .network
                .segments()
                .filter(|s| !pairs.contains(&(s.to.0, s.from.0)))
                .count();
            assert!(
                one_ways > 5,
                "seed {seed}: only {one_ways} one-way streets survived"
            );
        }
    }

    #[test]
    fn zero_fraction_builds_all_two_way() {
        let city = CityConfig::small().build(4);
        let pairs: HashSet<(u32, u32)> = city
            .network
            .segments()
            .map(|s| (s.from.0, s.to.0))
            .collect();
        for s in city.network.segments() {
            assert!(
                pairs.contains(&(s.to.0, s.from.0)),
                "{} has no reverse",
                s.id
            );
        }
    }

    #[test]
    fn full_fraction_still_drivable() {
        let mut cfg = CityConfig::small();
        cfg.one_way_fraction = 1.0;
        let city = cfg.build(5);
        let (_, count) = strongly_connected_components(&city.network, &FreeFlow);
        assert_eq!(count, 1);
    }
}
