//! The directed road-network graph `G = (V, E)`.
//!
//! Following the paper (Section III-A), vertices are *landmarks*
//! (intersections or turning points) and edges are *road segments*. The graph
//! is directed; two-way streets are represented by a pair of opposite
//! segments.

use crate::geo::{BoundingBox, GeoPoint};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a landmark (graph vertex).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LandmarkId(pub u32);

/// Identifier of a road segment (directed graph edge).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SegmentId(pub u32);

impl LandmarkId {
    /// The landmark's index into [`RoadNetwork`] storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl SegmentId {
    /// The segment's index into [`RoadNetwork`] storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LandmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// Functional class of a road, determining its free-flow speed limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadClass {
    /// Limited-access highway (~65 mph).
    Motorway,
    /// Major urban artery (~40 mph).
    Arterial,
    /// Local/residential street (~25 mph).
    Residential,
}

impl RoadClass {
    /// Free-flow speed limit in meters per second.
    pub fn speed_limit_mps(self) -> f64 {
        match self {
            RoadClass::Motorway => 29.0,
            RoadClass::Arterial => 18.0,
            RoadClass::Residential => 11.0,
        }
    }
}

/// A landmark: an intersection or turning point in the road network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Landmark {
    /// The landmark's identifier (equals its index in the network).
    pub id: LandmarkId,
    /// Geographic position.
    pub position: GeoPoint,
}

/// A directed road segment between two landmarks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoadSegment {
    /// The segment's identifier (equals its index in the network).
    pub id: SegmentId,
    /// Tail landmark.
    pub from: LandmarkId,
    /// Head landmark.
    pub to: LandmarkId,
    /// Length in meters.
    pub length_m: f64,
    /// Functional class (determines the speed limit).
    pub class: RoadClass,
}

impl RoadSegment {
    /// Free-flow travel time in seconds (`l_e / v_e` in the paper's
    /// driving-delay formula).
    pub fn free_flow_time_s(&self) -> f64 {
        self.length_m / self.class.speed_limit_mps()
    }
}

/// The directed road network `G = (V, E)`.
///
/// # Examples
///
/// ```
/// use mobirescue_roadnet::geo::GeoPoint;
/// use mobirescue_roadnet::graph::{RoadClass, RoadNetwork};
///
/// let mut net = RoadNetwork::new();
/// let a = net.add_landmark(GeoPoint::new(35.0, -80.0));
/// let b = net.add_landmark(GeoPoint::new(35.01, -80.0));
/// let (ab, ba) = net.add_two_way(a, b, RoadClass::Residential);
/// assert_eq!(net.segment(ab).from, a);
/// assert_eq!(net.segment(ba).from, b);
/// assert_eq!(net.out_segments(a), &[ab]);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoadNetwork {
    landmarks: Vec<Landmark>,
    segments: Vec<RoadSegment>,
    out: Vec<Vec<SegmentId>>,
    inc: Vec<Vec<SegmentId>>,
}

impl RoadNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of landmarks `|V|`.
    pub fn num_landmarks(&self) -> usize {
        self.landmarks.len()
    }

    /// Number of directed segments `|E|`.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Adds a landmark at `position` and returns its id.
    pub fn add_landmark(&mut self, position: GeoPoint) -> LandmarkId {
        let id = LandmarkId(self.landmarks.len() as u32);
        self.landmarks.push(Landmark { id, position });
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        id
    }

    /// Adds a directed segment from `from` to `to` with the haversine length
    /// between the endpoints, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if either landmark id is out of range or if `from == to`
    /// (self-loops carry no routing meaning).
    pub fn add_segment(&mut self, from: LandmarkId, to: LandmarkId, class: RoadClass) -> SegmentId {
        assert!(
            from.index() < self.landmarks.len(),
            "unknown landmark {from}"
        );
        assert!(to.index() < self.landmarks.len(), "unknown landmark {to}");
        assert_ne!(from, to, "self-loop segments are not allowed");
        let length_m = self.landmarks[from.index()]
            .position
            .distance_m(self.landmarks[to.index()].position);
        let id = SegmentId(self.segments.len() as u32);
        self.segments.push(RoadSegment {
            id,
            from,
            to,
            length_m,
            class,
        });
        self.out[from.index()].push(id);
        self.inc[to.index()].push(id);
        id
    }

    /// Adds a pair of opposite segments (a two-way street) and returns both
    /// ids as `(forward, backward)`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`RoadNetwork::add_segment`].
    pub fn add_two_way(
        &mut self,
        a: LandmarkId,
        b: LandmarkId,
        class: RoadClass,
    ) -> (SegmentId, SegmentId) {
        (self.add_segment(a, b, class), self.add_segment(b, a, class))
    }

    /// The landmark with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn landmark(&self, id: LandmarkId) -> &Landmark {
        &self.landmarks[id.index()]
    }

    /// The segment with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn segment(&self, id: SegmentId) -> &RoadSegment {
        &self.segments[id.index()]
    }

    /// Segments leaving `lm`.
    pub fn out_segments(&self, lm: LandmarkId) -> &[SegmentId] {
        &self.out[lm.index()]
    }

    /// Segments arriving at `lm`.
    pub fn in_segments(&self, lm: LandmarkId) -> &[SegmentId] {
        &self.inc[lm.index()]
    }

    /// Iterator over all landmarks.
    pub fn landmarks(&self) -> impl Iterator<Item = &Landmark> + '_ {
        self.landmarks.iter()
    }

    /// Iterator over all segments.
    pub fn segments(&self) -> impl Iterator<Item = &RoadSegment> + '_ {
        self.segments.iter()
    }

    /// Iterator over all landmark ids.
    pub fn landmark_ids(&self) -> impl Iterator<Item = LandmarkId> {
        (0..self.landmarks.len() as u32).map(LandmarkId)
    }

    /// Iterator over all segment ids.
    pub fn segment_ids(&self) -> impl Iterator<Item = SegmentId> {
        (0..self.segments.len() as u32).map(SegmentId)
    }

    /// Geographic midpoint of a segment, used to attach weather/flood state
    /// and to map-match GPS points.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn segment_midpoint(&self, id: SegmentId) -> GeoPoint {
        let seg = self.segment(id);
        self.landmark(seg.from)
            .position
            .midpoint(self.landmark(seg.to).position)
    }

    /// The landmark nearest to `p` (linear scan), or `None` for an empty
    /// network.
    pub fn nearest_landmark(&self, p: GeoPoint) -> Option<LandmarkId> {
        self.landmarks
            .iter()
            .min_by(|a, b| {
                a.position
                    .distance_m(p)
                    .partial_cmp(&b.position.distance_m(p))
                    .expect("distances are never NaN")
            })
            .map(|lm| lm.id)
    }

    /// The segment whose midpoint is nearest to `p`, or `None` for a network
    /// without segments.
    pub fn nearest_segment(&self, p: GeoPoint) -> Option<SegmentId> {
        self.segments
            .iter()
            .min_by(|a, b| {
                let da = self
                    .landmark(a.from)
                    .position
                    .midpoint(self.landmark(a.to).position);
                let db = self
                    .landmark(b.from)
                    .position
                    .midpoint(self.landmark(b.to).position);
                da.distance_m(p)
                    .partial_cmp(&db.distance_m(p))
                    .expect("distances are never NaN")
            })
            .map(|s| s.id)
    }

    /// Bounding box of all landmarks, or `None` for an empty network.
    pub fn bounding_box(&self) -> Option<BoundingBox> {
        BoundingBox::enclosing(self.landmarks.iter().map(|lm| lm.position))
    }

    /// Total length of all segments in meters.
    pub fn total_length_m(&self) -> f64 {
        self.segments.iter().map(|s| s.length_m).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (RoadNetwork, [LandmarkId; 3]) {
        let mut net = RoadNetwork::new();
        let a = net.add_landmark(GeoPoint::new(35.00, -80.00));
        let b = net.add_landmark(GeoPoint::new(35.01, -80.00));
        let c = net.add_landmark(GeoPoint::new(35.00, -80.01));
        net.add_two_way(a, b, RoadClass::Residential);
        net.add_two_way(b, c, RoadClass::Arterial);
        net.add_two_way(c, a, RoadClass::Motorway);
        (net, [a, b, c])
    }

    #[test]
    fn counts_match_construction() {
        let (net, _) = triangle();
        assert_eq!(net.num_landmarks(), 3);
        assert_eq!(net.num_segments(), 6);
    }

    #[test]
    fn adjacency_is_consistent() {
        let (net, [a, b, c]) = triangle();
        for lm in [a, b, c] {
            assert_eq!(net.out_segments(lm).len(), 2);
            assert_eq!(net.in_segments(lm).len(), 2);
            for &sid in net.out_segments(lm) {
                assert_eq!(net.segment(sid).from, lm);
            }
            for &sid in net.in_segments(lm) {
                assert_eq!(net.segment(sid).to, lm);
            }
        }
    }

    #[test]
    fn segment_length_matches_haversine() {
        let (net, [a, b, _]) = triangle();
        let seg = net.segment(net.out_segments(a)[0]);
        let expect = net
            .landmark(a)
            .position
            .distance_m(net.landmark(b).position);
        assert!((seg.length_m - expect).abs() < 1e-9);
    }

    #[test]
    fn free_flow_time_uses_class_speed() {
        let (net, _) = triangle();
        for seg in net.segments() {
            let t = seg.free_flow_time_s();
            assert!((t - seg.length_m / seg.class.speed_limit_mps()).abs() < 1e-12);
            assert!(t > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut net = RoadNetwork::new();
        let a = net.add_landmark(GeoPoint::new(35.0, -80.0));
        net.add_segment(a, a, RoadClass::Residential);
    }

    #[test]
    #[should_panic(expected = "unknown landmark")]
    fn out_of_range_landmark_rejected() {
        let mut net = RoadNetwork::new();
        let a = net.add_landmark(GeoPoint::new(35.0, -80.0));
        net.add_segment(a, LandmarkId(99), RoadClass::Residential);
    }

    #[test]
    fn nearest_landmark_and_segment() {
        let (net, [a, _, c]) = triangle();
        let near_a = net.landmark(a).position.offset_m(10.0, 10.0);
        assert_eq!(net.nearest_landmark(near_a), Some(a));
        let mid_ca = net
            .landmark(c)
            .position
            .midpoint(net.landmark(a).position)
            .offset_m(1.0, 1.0);
        let seg = net.segment(net.nearest_segment(mid_ca).unwrap());
        assert!(
            (seg.from == c && seg.to == a) || (seg.from == a && seg.to == c),
            "matched {seg:?}"
        );
    }

    #[test]
    fn empty_network_queries() {
        let net = RoadNetwork::new();
        assert!(net.nearest_landmark(GeoPoint::new(0.0, 0.0)).is_none());
        assert!(net.nearest_segment(GeoPoint::new(0.0, 0.0)).is_none());
        assert!(net.bounding_box().is_none());
    }

    #[test]
    fn speed_limits_are_ordered() {
        assert!(
            RoadClass::Motorway.speed_limit_mps() > RoadClass::Arterial.speed_limit_mps()
                && RoadClass::Arterial.speed_limit_mps() > RoadClass::Residential.speed_limit_mps()
        );
    }
}
