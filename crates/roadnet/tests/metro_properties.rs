//! Property-based tests for the multi-district metro generator.
//!
//! The single-district generator path is pinned byte-for-byte by the
//! golden fixtures; these properties cover the multi-district path
//! (`districts_x * districts_y > 1`), which draws from its own RNG
//! stream. Randomized cases use
//! small district grids to keep each build cheap; the pinned tests at the
//! bottom assert the full `metro`/`multi_city` presets hit their scale
//! targets.

use mobirescue_roadnet::connectivity::strongly_connected_components;
use mobirescue_roadnet::generator::CityConfig;
use mobirescue_roadnet::graph::LandmarkId;
use mobirescue_roadnet::routing::FreeFlow;
use mobirescue_roadnet::CsrGraph;
use proptest::prelude::*;

/// A small multi-district config driven by proptest inputs.
fn district_config(
    grid: usize,
    districts_x: usize,
    districts_y: usize,
    gap_m: f64,
    one_way_fraction: f64,
) -> CityConfig {
    let mut cfg = CityConfig::small();
    cfg.grid_width = grid;
    cfg.grid_height = grid;
    cfg.districts_x = districts_x;
    cfg.districts_y = districts_y;
    cfg.district_gap_m = gap_m;
    cfg.one_way_fraction = one_way_fraction;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The same seed always produces the same metro: landmark positions,
    /// segment topology, hospitals, and depot are all identical.
    #[test]
    fn metro_build_is_deterministic(
        seed in 0u64..1_000,
        grid in 6usize..12,
        dx in 1usize..4,
        dy in 2usize..4,
        gap_m in 600.0f64..4_000.0,
    ) {
        let cfg = district_config(grid, dx, dy, gap_m, 0.2);
        let a = cfg.build(seed);
        let b = cfg.build(seed);
        prop_assert_eq!(a.network.num_landmarks(), b.network.num_landmarks());
        prop_assert_eq!(a.network.num_segments(), b.network.num_segments());
        for lm in a.network.landmark_ids() {
            prop_assert_eq!(
                a.network.landmark(lm).position,
                b.network.landmark(lm).position
            );
        }
        let segs_a: Vec<_> = a.network.segments().map(|s| (s.from, s.to, s.class)).collect();
        let segs_b: Vec<_> = b.network.segments().map(|s| (s.from, s.to, s.class)).collect();
        prop_assert_eq!(segs_a, segs_b);
        prop_assert_eq!(&a.hospitals, &b.hospitals);
        prop_assert_eq!(a.depot, b.depot);
    }

    /// Structural soundness of every generated metro: the expected
    /// landmark count, no dangling segment endpoints, no self-loops,
    /// positive segment lengths, and strong connectivity across district
    /// boundaries even with one-way residential streets.
    #[test]
    fn metro_structure_is_sound(
        seed in 0u64..1_000,
        grid in 6usize..12,
        dx in 1usize..4,
        dy in 2usize..4,
        one_way_fraction in 0.0f64..0.5,
    ) {
        let cfg = district_config(grid, dx, dy, 1_000.0, one_way_fraction);
        let city = cfg.build(seed);
        let n = city.network.num_landmarks();
        prop_assert_eq!(n, grid * grid * dx * dy);
        for s in city.network.segments() {
            prop_assert!(s.from.index() < n, "dangling from endpoint {}", s.from);
            prop_assert!(s.to.index() < n, "dangling to endpoint {}", s.to);
            prop_assert!(s.from != s.to, "self-loop at {}", s.from);
            prop_assert!(s.length_m > 0.0, "non-positive length on {}", s.id);
        }
        let (_, count) = strongly_connected_components(&city.network, &FreeFlow);
        prop_assert_eq!(count, 1, "metro fragmented into {} components", count);
        for r in city.regions.region_ids() {
            prop_assert!(
                !city.regions.landmarks_in(r).is_empty(),
                "{} has no landmarks", r
            );
        }
        let mut covered = vec![false; city.regions.num_regions()];
        for &h in &city.hospitals {
            covered[city.regions.of_landmark(h).index()] = true;
        }
        prop_assert!(covered.iter().all(|&c| c), "regions without hospital: {:?}", covered);
    }

    /// The CSR acceleration layer round-trips the multi-district topology:
    /// full-tree distances from the depot equal the naive router's, so the
    /// district connectors survive the CSR rebuild bit-for-bit.
    #[test]
    fn metro_csr_round_trips(seed in 0u64..200, grid in 6usize..10) {
        let cfg = district_config(grid, 2, 2, 1_200.0, 0.2);
        let city = cfg.build(seed);
        let net = &city.network;
        let naive = mobirescue_roadnet::routing::Router::new(net)
            .shortest_paths_from(&FreeFlow, city.depot);
        let csr = CsrGraph::build(net);
        let pristine = mobirescue_roadnet::NetworkCondition::pristine(net);
        let fast = csr.shortest_paths(&csr.snapshot_condition(net, &pristine), city.depot);
        prop_assert_eq!(naive.travel_times(), fast.travel_times());
    }

    /// Districts are spatially disjoint: the gap between adjacent
    /// districts keeps every cross-district landmark pair farther apart
    /// than the in-district spacing, so the layout really is a metro of
    /// separated grids rather than one smeared blob.
    #[test]
    fn district_gaps_separate_the_grids(seed in 0u64..200, grid in 6usize..10) {
        let gap_m = 3_000.0;
        let cfg = district_config(grid, 2, 1, gap_m, 0.0);
        let city = cfg.build(seed);
        let per_district = grid * grid;
        // Landmarks are added district-by-district, so the first
        // `per_district` ids are district (0,0), the next are (1,0).
        let west = city.network.landmark(LandmarkId(0)).position;
        let min_cross = (0..per_district)
            .flat_map(|a| {
                (per_district..2 * per_district).map(move |b| (a as u32, b as u32))
            })
            .map(|(a, b)| {
                city.network
                    .landmark(LandmarkId(a))
                    .position
                    .distance_m(city.network.landmark(LandmarkId(b)).position)
            })
            .fold(f64::INFINITY, f64::min);
        // Jitter can eat into the gap from both sides, never more than
        // 2 * position_jitter_m.
        let jitter = cfg.position_jitter_m;
        prop_assert!(
            min_cross >= gap_m - 2.0 * jitter,
            "districts overlap: min cross-district distance {min_cross} m (gap {gap_m} m)"
        );
        // Sanity: the reference landmark is a real position, not NaN.
        prop_assert!(west.lat.is_finite() && west.lon.is_finite());
    }
}

/// The `metro` preset delivers the promised scale: ≥100k directed
/// segments over 25,600 landmarks, strongly connected, with every region
/// populated — and two builds from the same seed are identical.
#[test]
fn metro_preset_hits_scale_targets() {
    let cfg = CityConfig::metro();
    let city = cfg.build(7);
    assert_eq!(city.network.num_landmarks(), 80 * 80 * 4);
    assert!(
        city.network.num_segments() >= 100_000,
        "metro preset only has {} segments",
        city.network.num_segments()
    );
    let (_, count) = strongly_connected_components(&city.network, &FreeFlow);
    assert_eq!(count, 1, "metro fragmented");
    for r in city.regions.region_ids() {
        assert!(!city.regions.landmarks_in(r).is_empty(), "{r} is empty");
    }
    let again = cfg.build(7);
    assert_eq!(city.network.num_segments(), again.network.num_segments());
    let probe = LandmarkId((city.network.num_landmarks() / 2) as u32);
    assert_eq!(
        city.network.landmark(probe).position,
        again.network.landmark(probe).position
    );
    assert_eq!(city.hospitals, again.hospitals);
}

/// The `multi_city` preset stays strongly connected across its long
/// inter-city connectors.
#[test]
fn multi_city_preset_is_connected() {
    let city = CityConfig::multi_city().build(7);
    assert!(
        city.network.num_segments() >= 50_000,
        "multi_city preset only has {} segments",
        city.network.num_segments()
    );
    let (_, count) = strongly_connected_components(&city.network, &FreeFlow);
    assert_eq!(count, 1, "multi-city metro fragmented");
}
