//! Property-based tests for the road-network substrate.

use mobirescue_roadnet::damage::NetworkCondition;
use mobirescue_roadnet::generator::CityConfig;
use mobirescue_roadnet::geo::GeoPoint;
use mobirescue_roadnet::graph::{LandmarkId, RoadNetwork, SegmentId};
use mobirescue_roadnet::routing::{FreeFlow, Router};
use mobirescue_roadnet::{CsrGraph, RoutePlanner};
use proptest::prelude::*;

/// Applies a reproducible random damage pattern: `blocked` segments are cut
/// and `slowed` segments run at a reduced speed factor.
fn damaged_condition(
    net: &RoadNetwork,
    blocked: &[u32],
    slowed: &[(u32, f64)],
) -> NetworkCondition {
    let num_segs = net.num_segments() as u32;
    let mut cond = NetworkCondition::pristine(net);
    for &s in blocked {
        cond.block(SegmentId(s % num_segs));
    }
    for &(s, f) in slowed {
        cond.set_speed_factor(SegmentId(s % num_segs), f);
    }
    cond
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Haversine distance is a metric: symmetric, zero iff equal (for
    /// distinct city-scale points), and satisfies the triangle inequality.
    #[test]
    fn haversine_is_a_metric(
        lat1 in 34.0f64..37.0, lon1 in -82.0f64..-78.0,
        lat2 in 34.0f64..37.0, lon2 in -82.0f64..-78.0,
        lat3 in 34.0f64..37.0, lon3 in -82.0f64..-78.0,
    ) {
        let a = GeoPoint::new(lat1, lon1);
        let b = GeoPoint::new(lat2, lon2);
        let c = GeoPoint::new(lat3, lon3);
        prop_assert!((a.distance_m(b) - b.distance_m(a)).abs() < 1e-6);
        prop_assert!(a.distance_m(b) >= 0.0);
        prop_assert!(a.distance_m(c) <= a.distance_m(b) + b.distance_m(c) + 1e-6);
    }

    /// offset_m followed by local_xy_m round-trips within a meter.
    #[test]
    fn offset_round_trip(
        east in -20_000.0f64..20_000.0,
        north in -20_000.0f64..20_000.0,
    ) {
        let origin = GeoPoint::new(35.2271, -80.8431);
        let moved = origin.offset_m(east, north);
        let (e, n) = moved.local_xy_m(origin);
        prop_assert!((e - east).abs() < 1.0, "east {e} vs {east}");
        prop_assert!((n - north).abs() < 1.0, "north {n} vs {north}");
    }

    /// Every shortest route is contiguous, starts/ends correctly, and its
    /// reported travel time matches the sum over its segments.
    #[test]
    fn routes_are_valid(seed in 0u64..1_000, from in 0u32..144, to in 0u32..144) {
        let city = CityConfig::small().build(seed);
        let n = city.network.num_landmarks() as u32;
        let from = LandmarkId(from % n);
        let to = LandmarkId(to % n);
        let router = Router::new(&city.network);
        let route = router.shortest_path(&FreeFlow, from, to).expect("grid is connected");
        prop_assert_eq!(*route.landmarks.first().unwrap(), from);
        prop_assert_eq!(*route.landmarks.last().unwrap(), to);
        let mut t = 0.0;
        let mut cur = from;
        for &sid in &route.segments {
            let seg = city.network.segment(sid);
            prop_assert_eq!(seg.from, cur);
            cur = seg.to;
            t += seg.free_flow_time_s();
        }
        prop_assert_eq!(cur, to);
        prop_assert!((t - route.travel_time_s).abs() < 1e-6);
    }

    /// Shortest-path travel times satisfy the triangle inequality through
    /// any intermediate landmark.
    #[test]
    fn dijkstra_triangle_inequality(seed in 0u64..100, mid in 0u32..144) {
        let city = CityConfig::small().build(seed);
        let n = city.network.num_landmarks() as u32;
        let mid = LandmarkId(mid % n);
        let router = Router::new(&city.network);
        let from_depot = router.shortest_paths_from(&FreeFlow, city.depot);
        let from_mid = router.shortest_paths_from(&FreeFlow, mid);
        for lm in city.network.landmark_ids() {
            let direct = from_depot.travel_time_s(lm).unwrap();
            let via = from_depot.travel_time_s(mid).unwrap() + from_mid.travel_time_s(lm).unwrap();
            prop_assert!(direct <= via + 1e-6);
        }
    }

    /// Blocking segments never shortens any shortest path (monotonicity of
    /// damage), and blocked segments never appear in a route.
    #[test]
    fn damage_is_monotone(seed in 0u64..100, blocked in prop::collection::vec(0u32..500, 0..40)) {
        let city = CityConfig::small().build(seed);
        let num_segs = city.network.num_segments() as u32;
        let mut cond = NetworkCondition::pristine(&city.network);
        let blocked: Vec<SegmentId> =
            blocked.into_iter().map(|s| SegmentId(s % num_segs)).collect();
        for &s in &blocked {
            cond.block(s);
        }
        let router = Router::new(&city.network);
        let pristine = router.shortest_paths_from(&FreeFlow, city.depot);
        let damaged = router.shortest_paths_from(&cond, city.depot);
        for lm in city.network.landmark_ids() {
            let before = pristine.travel_time_s(lm).unwrap();
            if let Some(after) = damaged.travel_time_s(lm) {
                prop_assert!(after + 1e-9 >= before);
            } // unreachable after damage is fine
            if let Some(route) = damaged.route_to(&city.network, lm) {
                for sid in route.segments {
                    prop_assert!(cond.is_operable(sid), "route uses blocked {sid}");
                }
            }
        }
    }

    /// The CSR full-tree Dijkstra is *bit-identical* to the naive adjacency
    /// Dijkstra on arbitrary networks under arbitrary damage — the exact
    /// equivalence contract of the acceleration layer. Distances are
    /// compared with `==`, not a tolerance.
    #[test]
    fn csr_tree_bit_identical_to_naive(
        seed in 0u64..100,
        source in 0u32..10_000,
        blocked in prop::collection::vec(0u32..10_000, 0..40),
        slowed in prop::collection::vec((0u32..10_000, 0.05f64..1.0), 0..20),
    ) {
        let city = CityConfig::small().build(seed);
        let net = &city.network;
        let cond = damaged_condition(net, &blocked, &slowed);
        let from = LandmarkId(source % net.num_landmarks() as u32);
        let naive = Router::new(net).shortest_paths_from(&cond, from);
        let csr = CsrGraph::build(net);
        let fast = csr.shortest_paths(&csr.snapshot_condition(net, &cond), from);
        prop_assert_eq!(naive.travel_times(), fast.travel_times());
        for lm in net.landmark_ids() {
            prop_assert_eq!(naive.route_to(net, lm), fast.route_to(net, lm));
        }
    }

    /// Planner point queries (early-exit Dijkstra or cached tree) and
    /// nearest-target queries (multi-target early exit) return exactly what
    /// the naive router returns, before and after the cache is populated.
    #[test]
    fn planner_queries_match_naive_router(
        seed in 0u64..100,
        source in 0u32..10_000,
        to in 0u32..10_000,
        targets in prop::collection::vec(0u32..10_000, 0..12),
        blocked in prop::collection::vec(0u32..10_000, 0..40),
    ) {
        let city = CityConfig::small().build(seed);
        let net = &city.network;
        let n = net.num_landmarks() as u32;
        let cond = damaged_condition(net, &blocked, &[]);
        let from = LandmarkId(source % n);
        let to = LandmarkId(to % n);
        let targets: Vec<LandmarkId> =
            targets.into_iter().map(|t| LandmarkId(t % n)).collect();
        let router = Router::new(net);
        let planner = RoutePlanner::new(net);
        // Cold pass: early-exit point / multi-target queries, no cached tree.
        prop_assert_eq!(
            planner.route(&cond, from, to),
            router.shortest_path(&cond, from, to)
        );
        prop_assert_eq!(
            planner.nearest_target(&cond, from, &targets),
            router.nearest_target(&cond, from, &targets)
        );
        // Warm pass: the same queries served from the cached full tree.
        planner.prewarm(&cond, &[from], 2);
        prop_assert_eq!(
            planner.route(&cond, from, to),
            router.shortest_path(&cond, from, to)
        );
        prop_assert_eq!(
            planner.nearest_target(&cond, from, &targets),
            router.nearest_target(&cond, from, &targets)
        );
    }

    /// Mutating the condition (a generation bump) invalidates the cache and
    /// every post-bump answer matches a fresh naive run on the mutated
    /// network — stale trees can never leak across damage events.
    #[test]
    fn generation_bump_keeps_cache_coherent(
        seed in 0u64..100,
        source in 0u32..10_000,
        first in prop::collection::vec(0u32..10_000, 0..25),
        second in prop::collection::vec(0u32..10_000, 1..25),
    ) {
        let city = CityConfig::small().build(seed);
        let net = &city.network;
        let num_segs = net.num_segments() as u32;
        let from = LandmarkId(source % net.num_landmarks() as u32);
        let router = Router::new(net);
        let planner = RoutePlanner::new(net);
        let mut cond = damaged_condition(net, &first, &[]);
        let before = planner.paths_from(&cond, from);
        prop_assert_eq!(
            router.shortest_paths_from(&cond, from).travel_times(),
            before.travel_times()
        );
        for &s in &second {
            cond.block(SegmentId(s % num_segs));
        }
        let after = planner.paths_from(&cond, from);
        prop_assert_eq!(
            router.shortest_paths_from(&cond, from).travel_times(),
            after.travel_times()
        );
    }

    /// Parallel prewarm over any thread count yields the same cached trees
    /// as sequential routing — the fan-out changes wall-clock only, never
    /// results.
    #[test]
    fn parallel_prewarm_matches_sequential(
        seed in 0u64..100,
        sources in prop::collection::vec(0u32..10_000, 1..16),
        threads in 1usize..8,
        blocked in prop::collection::vec(0u32..10_000, 0..30),
    ) {
        let city = CityConfig::small().build(seed);
        let net = &city.network;
        let n = net.num_landmarks() as u32;
        let cond = damaged_condition(net, &blocked, &[]);
        let sources: Vec<LandmarkId> =
            sources.into_iter().map(|s| LandmarkId(s % n)).collect();
        let planner = RoutePlanner::new(net);
        planner.prewarm(&cond, &sources, threads);
        let router = Router::new(net);
        for &from in &sources {
            prop_assert_eq!(
                router.shortest_paths_from(&cond, from).travel_times(),
                planner.paths_from(&cond, from).travel_times()
            );
        }
    }
}
