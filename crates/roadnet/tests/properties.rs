//! Property-based tests for the road-network substrate.

use mobirescue_roadnet::damage::NetworkCondition;
use mobirescue_roadnet::generator::CityConfig;
use mobirescue_roadnet::geo::GeoPoint;
use mobirescue_roadnet::graph::{LandmarkId, SegmentId};
use mobirescue_roadnet::routing::{FreeFlow, Router};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Haversine distance is a metric: symmetric, zero iff equal (for
    /// distinct city-scale points), and satisfies the triangle inequality.
    #[test]
    fn haversine_is_a_metric(
        lat1 in 34.0f64..37.0, lon1 in -82.0f64..-78.0,
        lat2 in 34.0f64..37.0, lon2 in -82.0f64..-78.0,
        lat3 in 34.0f64..37.0, lon3 in -82.0f64..-78.0,
    ) {
        let a = GeoPoint::new(lat1, lon1);
        let b = GeoPoint::new(lat2, lon2);
        let c = GeoPoint::new(lat3, lon3);
        prop_assert!((a.distance_m(b) - b.distance_m(a)).abs() < 1e-6);
        prop_assert!(a.distance_m(b) >= 0.0);
        prop_assert!(a.distance_m(c) <= a.distance_m(b) + b.distance_m(c) + 1e-6);
    }

    /// offset_m followed by local_xy_m round-trips within a meter.
    #[test]
    fn offset_round_trip(
        east in -20_000.0f64..20_000.0,
        north in -20_000.0f64..20_000.0,
    ) {
        let origin = GeoPoint::new(35.2271, -80.8431);
        let moved = origin.offset_m(east, north);
        let (e, n) = moved.local_xy_m(origin);
        prop_assert!((e - east).abs() < 1.0, "east {e} vs {east}");
        prop_assert!((n - north).abs() < 1.0, "north {n} vs {north}");
    }

    /// Every shortest route is contiguous, starts/ends correctly, and its
    /// reported travel time matches the sum over its segments.
    #[test]
    fn routes_are_valid(seed in 0u64..1_000, from in 0u32..144, to in 0u32..144) {
        let city = CityConfig::small().build(seed);
        let n = city.network.num_landmarks() as u32;
        let from = LandmarkId(from % n);
        let to = LandmarkId(to % n);
        let router = Router::new(&city.network);
        let route = router.shortest_path(&FreeFlow, from, to).expect("grid is connected");
        prop_assert_eq!(*route.landmarks.first().unwrap(), from);
        prop_assert_eq!(*route.landmarks.last().unwrap(), to);
        let mut t = 0.0;
        let mut cur = from;
        for &sid in &route.segments {
            let seg = city.network.segment(sid);
            prop_assert_eq!(seg.from, cur);
            cur = seg.to;
            t += seg.free_flow_time_s();
        }
        prop_assert_eq!(cur, to);
        prop_assert!((t - route.travel_time_s).abs() < 1e-6);
    }

    /// Shortest-path travel times satisfy the triangle inequality through
    /// any intermediate landmark.
    #[test]
    fn dijkstra_triangle_inequality(seed in 0u64..100, mid in 0u32..144) {
        let city = CityConfig::small().build(seed);
        let n = city.network.num_landmarks() as u32;
        let mid = LandmarkId(mid % n);
        let router = Router::new(&city.network);
        let from_depot = router.shortest_paths_from(&FreeFlow, city.depot);
        let from_mid = router.shortest_paths_from(&FreeFlow, mid);
        for lm in city.network.landmark_ids() {
            let direct = from_depot.travel_time_s(lm).unwrap();
            let via = from_depot.travel_time_s(mid).unwrap() + from_mid.travel_time_s(lm).unwrap();
            prop_assert!(direct <= via + 1e-6);
        }
    }

    /// Blocking segments never shortens any shortest path (monotonicity of
    /// damage), and blocked segments never appear in a route.
    #[test]
    fn damage_is_monotone(seed in 0u64..100, blocked in prop::collection::vec(0u32..500, 0..40)) {
        let city = CityConfig::small().build(seed);
        let num_segs = city.network.num_segments() as u32;
        let mut cond = NetworkCondition::pristine(&city.network);
        let blocked: Vec<SegmentId> =
            blocked.into_iter().map(|s| SegmentId(s % num_segs)).collect();
        for &s in &blocked {
            cond.block(s);
        }
        let router = Router::new(&city.network);
        let pristine = router.shortest_paths_from(&FreeFlow, city.depot);
        let damaged = router.shortest_paths_from(&cond, city.depot);
        for lm in city.network.landmark_ids() {
            let before = pristine.travel_time_s(lm).unwrap();
            if let Some(after) = damaged.travel_time_s(lm) {
                prop_assert!(after + 1e-9 >= before);
            } // unreachable after damage is fine
            if let Some(route) = damaged.route_to(&city.network, lm) {
                for sid in route.segments {
                    prop_assert!(cond.is_operable(sid), "route uses blocked {sid}");
                }
            }
        }
    }
}
