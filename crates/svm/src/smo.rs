//! Sequential Minimal Optimization (Platt's SMO) trainer.
//!
//! Trains the soft-margin dual problem
//! `max Σαᵢ − ½ ΣΣ αᵢαⱼyᵢyⱼK(xᵢ,xⱼ)` s.t. `0 ≤ αᵢ ≤ C`, `Σαᵢyᵢ = 0`
//! with the simplified SMO working-set heuristic (random second index),
//! which is robust and more than fast enough for the few thousand labelled
//! examples the rescue predictor trains on.

use crate::kernel::Kernel;
use crate::model::SvmModel;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// SMO hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoConfig {
    /// Soft-margin penalty `C` (> 0).
    pub c: f64,
    /// KKT violation tolerance.
    pub tolerance: f64,
    /// Stop after this many consecutive passes without an update.
    pub max_passes: u32,
    /// Hard cap on total passes (guards pathological data).
    pub max_iterations: u32,
    /// RNG seed for the second-index heuristic.
    pub seed: u64,
}

impl Default for SmoConfig {
    fn default() -> Self {
        Self {
            c: 1.0,
            tolerance: 1e-3,
            max_passes: 5,
            max_iterations: 200,
            seed: 0,
        }
    }
}

/// Trains an SVM on `xs` with ±1 labels `ys`.
///
/// # Panics
///
/// Panics if the input is empty, lengths mismatch, labels are not ±1, or
/// `config.c <= 0`.
pub fn train(xs: &[Vec<f64>], ys: &[f64], kernel: Kernel, config: &SmoConfig) -> SvmModel {
    assert!(!xs.is_empty(), "cannot train on zero examples");
    assert_eq!(xs.len(), ys.len(), "one label per example");
    assert!(
        ys.iter().all(|&y| y == 1.0 || y == -1.0),
        "labels must be ±1"
    );
    assert!(config.c > 0.0, "C must be positive");
    let n = xs.len();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x736d_6f00);

    // Precompute the kernel matrix; training sets are capped by callers.
    let mut k = vec![0.0; n * n];
    for i in 0..n {
        for j in i..n {
            let v = kernel.eval(&xs[i], &xs[j]);
            k[i * n + j] = v;
            k[j * n + i] = v;
        }
    }

    let mut alpha = vec![0.0f64; n];
    let mut b = 0.0f64;
    let f = |alpha: &[f64], b: f64, i: usize, k: &[f64]| -> f64 {
        (0..n).map(|t| alpha[t] * ys[t] * k[t * n + i]).sum::<f64>() + b
    };

    let mut passes = 0;
    let mut iterations = 0;
    while passes < config.max_passes && iterations < config.max_iterations {
        iterations += 1;
        let mut changed = 0;
        for i in 0..n {
            let e_i = f(&alpha, b, i, &k) - ys[i];
            let violates = (ys[i] * e_i < -config.tolerance && alpha[i] < config.c)
                || (ys[i] * e_i > config.tolerance && alpha[i] > 0.0);
            if !violates {
                continue;
            }
            let mut j = rng.random_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            let e_j = f(&alpha, b, j, &k) - ys[j];
            let (a_i_old, a_j_old) = (alpha[i], alpha[j]);
            let (lo, hi) = if ys[i] != ys[j] {
                (
                    (a_j_old - a_i_old).max(0.0),
                    (config.c + a_j_old - a_i_old).min(config.c),
                )
            } else {
                (
                    (a_i_old + a_j_old - config.c).max(0.0),
                    (a_i_old + a_j_old).min(config.c),
                )
            };
            if (hi - lo).abs() < 1e-12 {
                continue;
            }
            let eta = 2.0 * k[i * n + j] - k[i * n + i] - k[j * n + j];
            if eta >= 0.0 {
                continue;
            }
            let mut a_j = a_j_old - ys[j] * (e_i - e_j) / eta;
            a_j = a_j.clamp(lo, hi);
            if (a_j - a_j_old).abs() < 1e-6 {
                continue;
            }
            let a_i = a_i_old + ys[i] * ys[j] * (a_j_old - a_j);
            alpha[i] = a_i;
            alpha[j] = a_j;
            let b1 = b
                - e_i
                - ys[i] * (a_i - a_i_old) * k[i * n + i]
                - ys[j] * (a_j - a_j_old) * k[i * n + j];
            let b2 = b
                - e_j
                - ys[i] * (a_i - a_i_old) * k[i * n + j]
                - ys[j] * (a_j - a_j_old) * k[j * n + j];
            b = if 0.0 < a_i && a_i < config.c {
                b1
            } else if 0.0 < a_j && a_j < config.c {
                b2
            } else {
                (b1 + b2) / 2.0
            };
            changed += 1;
        }
        passes = if changed == 0 { passes + 1 } else { 0 };
    }

    // Keep only the support vectors.
    let mut svs = Vec::new();
    let mut coeffs = Vec::new();
    for i in 0..n {
        if alpha[i] > 1e-8 {
            svs.push(xs[i].clone());
            coeffs.push(alpha[i] * ys[i]);
        }
    }
    SvmModel::from_parts(kernel, svs, coeffs, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy(model: &SvmModel, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        let hits = xs
            .iter()
            .zip(ys)
            .filter(|(x, &y)| model.predict(x) == (y > 0.0))
            .count();
        hits as f64 / xs.len() as f64
    }

    #[test]
    fn separates_linearly_separable_data() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            let t = i as f64 / 10.0;
            xs.push(vec![2.0 + t, 2.0 - t]);
            ys.push(1.0);
            xs.push(vec![-2.0 - t, -2.0 + t]);
            ys.push(-1.0);
        }
        let model = train(&xs, &ys, Kernel::Linear, &SmoConfig::default());
        assert_eq!(accuracy(&model, &xs, &ys), 1.0);
        assert!(
            model.num_support_vectors() < xs.len(),
            "not all points are SVs"
        );
    }

    #[test]
    fn rbf_solves_xor() {
        // XOR is not linearly separable; the RBF kernel handles it.
        let xs = vec![
            vec![1.0, 1.0],
            vec![-1.0, -1.0],
            vec![1.0, -1.0],
            vec![-1.0, 1.0],
            vec![1.2, 0.9],
            vec![-0.9, -1.1],
            vec![0.8, -1.2],
            vec![-1.1, 1.1],
        ];
        let ys = vec![1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, -1.0];
        let model = train(&xs, &ys, Kernel::Rbf { gamma: 1.0 }, &SmoConfig::default());
        assert_eq!(accuracy(&model, &xs, &ys), 1.0);
    }

    #[test]
    fn tolerates_label_noise_with_soft_margin() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..30 {
            let t = (i as f64) * 0.37;
            xs.push(vec![1.5 + t.sin() * 0.3, 1.5 + t.cos() * 0.3]);
            ys.push(1.0);
            xs.push(vec![-1.5 + t.cos() * 0.3, -1.5 + t.sin() * 0.3]);
            ys.push(-1.0);
        }
        // Flip two labels.
        ys[0] = -1.0;
        ys[1] = 1.0;
        let model = train(
            &xs,
            &ys,
            Kernel::Rbf { gamma: 0.5 },
            &SmoConfig {
                c: 1.0,
                ..SmoConfig::default()
            },
        );
        assert!(accuracy(&model, &xs, &ys) > 0.9);
    }

    #[test]
    fn deterministic_in_seed() {
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64])
            .collect();
        let ys: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let cfg = SmoConfig {
            seed: 3,
            ..SmoConfig::default()
        };
        let a = train(&xs, &ys, Kernel::Rbf { gamma: 0.8 }, &cfg);
        let b = train(&xs, &ys, Kernel::Rbf { gamma: 0.8 }, &cfg);
        assert_eq!(
            a.decision_function(&[2.0, 2.0]),
            b.decision_function(&[2.0, 2.0])
        );
    }

    #[test]
    #[should_panic(expected = "labels must be ±1")]
    fn bad_labels_rejected() {
        let _ = train(&[vec![1.0]], &[0.5], Kernel::Linear, &SmoConfig::default());
    }

    #[test]
    #[should_panic(expected = "zero examples")]
    fn empty_training_rejected() {
        let _ = train(&[], &[], Kernel::Linear, &SmoConfig::default());
    }
}
