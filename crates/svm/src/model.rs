//! The trained SVM model (Equation 1's `f`).

use crate::kernel::Kernel;
use serde::{Deserialize, Serialize};

/// A trained soft-margin SVM classifier.
///
/// Stores only the support vectors with their `αᵢ yᵢ` coefficients and the
/// bias; the decision function is
/// `f(x) = Σ αᵢ yᵢ K(xᵢ, x) + b`, predicting the positive class ("should be
/// rescued") when `f(x) > 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmModel {
    kernel: Kernel,
    support_vectors: Vec<Vec<f64>>,
    /// `αᵢ yᵢ` for each support vector.
    coefficients: Vec<f64>,
    bias: f64,
}

impl SvmModel {
    /// Assembles a model from trained parameters (used by the SMO trainer).
    ///
    /// # Panics
    ///
    /// Panics if the vector and coefficient counts differ.
    pub fn from_parts(
        kernel: Kernel,
        support_vectors: Vec<Vec<f64>>,
        coefficients: Vec<f64>,
        bias: f64,
    ) -> Self {
        assert_eq!(
            support_vectors.len(),
            coefficients.len(),
            "one coefficient per support vector"
        );
        Self {
            kernel,
            support_vectors,
            coefficients,
            bias,
        }
    }

    /// Number of support vectors retained.
    pub fn num_support_vectors(&self) -> usize {
        self.support_vectors.len()
    }

    /// The kernel the model was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The retained support vectors.
    pub fn support_vectors(&self) -> &[Vec<f64>] {
        &self.support_vectors
    }

    /// The `αᵢ yᵢ` coefficient of each support vector.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The bias term `b`.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The raw decision value `f(x)`; its sign is the class.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn decision_function(&self, x: &[f64]) -> f64 {
        self.support_vectors
            .iter()
            .zip(&self.coefficients)
            .map(|(sv, c)| c * self.kernel.eval(sv, x))
            .sum::<f64>()
            + self.bias
    }

    /// Predicts the class: `true` = positive ("should be rescued").
    pub fn predict(&self, x: &[f64]) -> bool {
        self.decision_function(x) > 0.0
    }

    /// Decision values for a flat, row-major batch of `dim`-wide rows,
    /// written into a caller-owned buffer (cleared first). One call per
    /// epoch replaces per-row calls in inference hot loops; each row's
    /// arithmetic is identical to [`SvmModel::decision_function`], so the
    /// results are bit-equal to the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or `rows.len()` is not a multiple of `dim`.
    pub fn decision_batch(&self, rows: &[f64], dim: usize, out: &mut Vec<f64>) {
        assert!(dim > 0, "batch rows must have positive dimension");
        assert_eq!(
            rows.len() % dim,
            0,
            "flat batch length must be a multiple of dim"
        );
        out.clear();
        out.reserve(rows.len() / dim);
        out.extend(rows.chunks_exact(dim).map(|x| self.decision_function(x)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_built_model_classifies() {
        // A single support vector at the origin with positive coefficient:
        // RBF decision decays with distance but stays positive; bias shifts
        // the boundary.
        let model = SvmModel::from_parts(
            Kernel::Rbf { gamma: 1.0 },
            vec![vec![0.0, 0.0]],
            vec![2.0],
            -1.0,
        );
        assert!(model.predict(&[0.0, 0.0]));
        assert!(!model.predict(&[3.0, 0.0]));
        assert_eq!(model.num_support_vectors(), 1);
    }

    #[test]
    fn decision_function_is_linear_in_coefficients() {
        let sv = vec![vec![1.0], vec![-1.0]];
        let m1 = SvmModel::from_parts(Kernel::Linear, sv.clone(), vec![1.0, -1.0], 0.0);
        // f(x) = 1*(1*x) + (-1)*(-1*x) = 2x
        assert!((m1.decision_function(&[3.0]) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn batched_decisions_equal_scalar_decisions() {
        let model = SvmModel::from_parts(
            Kernel::Rbf { gamma: 0.7 },
            vec![vec![0.0, 1.0], vec![2.0, -1.0]],
            vec![1.5, -0.5],
            0.25,
        );
        let rows = [[0.0, 0.0], [1.0, 1.0], [2.0, -1.0], [-3.0, 4.0]];
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let mut out = vec![99.0; 1]; // stale contents must be discarded
        model.decision_batch(&flat, 2, &mut out);
        assert_eq!(out.len(), rows.len());
        for (row, &d) in rows.iter().zip(&out) {
            assert_eq!(d, model.decision_function(row));
        }
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn ragged_batch_panics() {
        let model = SvmModel::from_parts(Kernel::Linear, vec![vec![1.0]], vec![1.0], 0.0);
        let mut out = Vec::new();
        model.decision_batch(&[1.0, 2.0, 3.0], 2, &mut out);
    }

    #[test]
    #[should_panic(expected = "one coefficient per support vector")]
    fn mismatched_parts_panic() {
        let _ = SvmModel::from_parts(Kernel::Linear, vec![vec![1.0]], vec![], 0.0);
    }
}
