//! The trained SVM model (Equation 1's `f`).

use crate::kernel::Kernel;
use serde::{Deserialize, Serialize};

/// A trained soft-margin SVM classifier.
///
/// Stores only the support vectors with their `αᵢ yᵢ` coefficients and the
/// bias; the decision function is
/// `f(x) = Σ αᵢ yᵢ K(xᵢ, x) + b`, predicting the positive class ("should be
/// rescued") when `f(x) > 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmModel {
    kernel: Kernel,
    support_vectors: Vec<Vec<f64>>,
    /// `αᵢ yᵢ` for each support vector.
    coefficients: Vec<f64>,
    bias: f64,
}

impl SvmModel {
    /// Assembles a model from trained parameters (used by the SMO trainer).
    ///
    /// # Panics
    ///
    /// Panics if the vector and coefficient counts differ.
    pub fn from_parts(
        kernel: Kernel,
        support_vectors: Vec<Vec<f64>>,
        coefficients: Vec<f64>,
        bias: f64,
    ) -> Self {
        assert_eq!(
            support_vectors.len(),
            coefficients.len(),
            "one coefficient per support vector"
        );
        Self {
            kernel,
            support_vectors,
            coefficients,
            bias,
        }
    }

    /// Number of support vectors retained.
    pub fn num_support_vectors(&self) -> usize {
        self.support_vectors.len()
    }

    /// The kernel the model was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The retained support vectors.
    pub fn support_vectors(&self) -> &[Vec<f64>] {
        &self.support_vectors
    }

    /// The `αᵢ yᵢ` coefficient of each support vector.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The bias term `b`.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The raw decision value `f(x)`; its sign is the class.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn decision_function(&self, x: &[f64]) -> f64 {
        self.support_vectors
            .iter()
            .zip(&self.coefficients)
            .map(|(sv, c)| c * self.kernel.eval(sv, x))
            .sum::<f64>()
            + self.bias
    }

    /// Predicts the class: `true` = positive ("should be rescued").
    pub fn predict(&self, x: &[f64]) -> bool {
        self.decision_function(x) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_built_model_classifies() {
        // A single support vector at the origin with positive coefficient:
        // RBF decision decays with distance but stays positive; bias shifts
        // the boundary.
        let model = SvmModel::from_parts(
            Kernel::Rbf { gamma: 1.0 },
            vec![vec![0.0, 0.0]],
            vec![2.0],
            -1.0,
        );
        assert!(model.predict(&[0.0, 0.0]));
        assert!(!model.predict(&[3.0, 0.0]));
        assert_eq!(model.num_support_vectors(), 1);
    }

    #[test]
    fn decision_function_is_linear_in_coefficients() {
        let sv = vec![vec![1.0], vec![-1.0]];
        let m1 = SvmModel::from_parts(Kernel::Linear, sv.clone(), vec![1.0, -1.0], 0.0);
        // f(x) = 1*(1*x) + (-1)*(-1*x) = 2x
        assert!((m1.decision_function(&[3.0]) - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one coefficient per support vector")]
    fn mismatched_parts_panic() {
        let _ = SvmModel::from_parts(Kernel::Linear, vec![vec![1.0]], vec![], 0.0);
    }
}
