//! SVM kernel functions.
//!
//! The paper motivates SVM partly by kernels: "the SVM classifier can
//! overcome [non-linear separability] by using the kernel function". The
//! RBF kernel is the default for the rescue-decision classifier.

use serde::{Deserialize, Serialize};

/// A positive-definite kernel `K(x, y)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// `K(x, y) = x · y`.
    Linear,
    /// `K(x, y) = exp(−γ ‖x − y‖²)`.
    Rbf {
        /// The width parameter γ (> 0).
        gamma: f64,
    },
    /// `K(x, y) = (x · y + c)^d`.
    Polynomial {
        /// The degree `d` (≥ 1).
        degree: u32,
        /// The constant offset `c`.
        coef0: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` differ in length.
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            y.len(),
            "kernel arguments must have equal dimension"
        );
        match *self {
            Kernel::Linear => dot(x, y),
            Kernel::Rbf { gamma } => {
                let d2: f64 = x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum();
                (-gamma * d2).exp()
            }
            Kernel::Polynomial { degree, coef0 } => (dot(x, y) + coef0).powi(degree as i32),
        }
    }
}

fn dot(x: &[f64], y: &[f64]) -> f64 {
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_dot_product() {
        let k = Kernel::Linear;
        assert_eq!(k.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn rbf_is_one_at_zero_distance_and_decays() {
        let k = Kernel::Rbf { gamma: 0.5 };
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
        let near = k.eval(&[0.0, 0.0], &[0.1, 0.0]);
        let far = k.eval(&[0.0, 0.0], &[2.0, 0.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn polynomial_matches_formula() {
        let k = Kernel::Polynomial {
            degree: 2,
            coef0: 1.0,
        };
        // (1*2 + 1)^2 = 9
        assert_eq!(k.eval(&[1.0], &[2.0]), 9.0);
    }

    #[test]
    fn kernels_are_symmetric() {
        let x = [0.3, -1.2, 4.0];
        let y = [2.0, 0.5, -0.1];
        for k in [
            Kernel::Linear,
            Kernel::Rbf { gamma: 0.7 },
            Kernel::Polynomial {
                degree: 3,
                coef0: 0.5,
            },
        ] {
            assert!((k.eval(&x, &y) - k.eval(&y, &x)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "equal dimension")]
    fn dimension_mismatch_panics() {
        Kernel::Linear.eval(&[1.0], &[1.0, 2.0]);
    }
}
