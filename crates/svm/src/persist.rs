//! Plain-text persistence for trained SVM models (libsvm-inspired format).
//!
//! ```text
//! svm rbf 0.5
//! bias <b>
//! sv <coef> <x_0> <x_1> ...
//! sv ...
//! ```

use crate::kernel::Kernel;
use crate::model::SvmModel;
use std::fmt::Write as _;
use std::str::FromStr;

/// Errors from parsing a persisted model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseModelError {
    /// Missing or malformed header line.
    BadHeader,
    /// Unknown kernel name or malformed kernel parameters.
    BadKernel,
    /// The bias line is missing or malformed.
    BadBias,
    /// A support-vector line failed to parse.
    BadSupportVector,
    /// Support vectors differ in dimension.
    InconsistentDimensions,
}

impl std::fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseModelError::BadHeader => write!(f, "missing or malformed header"),
            ParseModelError::BadKernel => write!(f, "unknown kernel or bad parameters"),
            ParseModelError::BadBias => write!(f, "missing or malformed bias line"),
            ParseModelError::BadSupportVector => write!(f, "malformed support-vector line"),
            ParseModelError::InconsistentDimensions => {
                write!(f, "support vectors differ in dimension")
            }
        }
    }
}

impl std::error::Error for ParseModelError {}

/// Serializes a model to the text format.
pub fn model_to_text(model: &SvmModel) -> String {
    let mut out = String::new();
    match model.kernel() {
        Kernel::Linear => out.push_str("svm linear\n"),
        Kernel::Rbf { gamma } => {
            let _ = writeln!(out, "svm rbf {gamma:?}");
        }
        Kernel::Polynomial { degree, coef0 } => {
            let _ = writeln!(out, "svm poly {degree} {coef0:?}");
        }
    }
    let _ = writeln!(out, "bias {:?}", model.bias());
    for (sv, coef) in model.support_vectors().iter().zip(model.coefficients()) {
        let _ = write!(out, "sv {coef:?}");
        for x in sv {
            let _ = write!(out, " {x:?}");
        }
        out.push('\n');
    }
    out
}

/// Parses a model produced by [`model_to_text`].
///
/// # Errors
///
/// Returns a [`ParseModelError`] on any malformed section.
pub fn model_from_text(text: &str) -> Result<SvmModel, ParseModelError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(ParseModelError::BadHeader)?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("svm") {
        return Err(ParseModelError::BadHeader);
    }
    let kernel = match parts.next() {
        Some("linear") => Kernel::Linear,
        Some("rbf") => {
            let gamma = parts
                .next()
                .and_then(|g| f64::from_str(g).ok())
                .ok_or(ParseModelError::BadKernel)?;
            Kernel::Rbf { gamma }
        }
        Some("poly") => {
            let degree = parts
                .next()
                .and_then(|d| u32::from_str(d).ok())
                .ok_or(ParseModelError::BadKernel)?;
            let coef0 = parts
                .next()
                .and_then(|c| f64::from_str(c).ok())
                .ok_or(ParseModelError::BadKernel)?;
            Kernel::Polynomial { degree, coef0 }
        }
        _ => return Err(ParseModelError::BadKernel),
    };
    let bias_line = lines.next().ok_or(ParseModelError::BadBias)?;
    let bias = bias_line
        .strip_prefix("bias ")
        .and_then(|b| f64::from_str(b).ok())
        .ok_or(ParseModelError::BadBias)?;
    let mut support_vectors = Vec::new();
    let mut coefficients = Vec::new();
    let mut dim: Option<usize> = None;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let rest = line
            .strip_prefix("sv ")
            .ok_or(ParseModelError::BadSupportVector)?;
        let values: Vec<f64> = rest
            .split_whitespace()
            .map(f64::from_str)
            .collect::<Result<_, _>>()
            .map_err(|_| ParseModelError::BadSupportVector)?;
        if values.is_empty() {
            return Err(ParseModelError::BadSupportVector);
        }
        let sv = values[1..].to_vec();
        match dim {
            None => dim = Some(sv.len()),
            Some(d) if d != sv.len() => return Err(ParseModelError::InconsistentDimensions),
            _ => {}
        }
        coefficients.push(values[0]);
        support_vectors.push(sv);
    }
    Ok(SvmModel::from_parts(
        kernel,
        support_vectors,
        coefficients,
        bias,
    ))
}

/// Structural finiteness check over every numeric field of a model: kernel
/// parameters, bias, coefficients, and support-vector entries.
///
/// # Errors
///
/// Returns a human-readable description of the first non-finite value.
pub fn check_finite(model: &SvmModel) -> Result<(), String> {
    match model.kernel() {
        Kernel::Linear => {}
        Kernel::Rbf { gamma } => {
            if !gamma.is_finite() {
                return Err(format!("rbf gamma is not finite ({gamma})"));
            }
        }
        Kernel::Polynomial { coef0, .. } => {
            if !coef0.is_finite() {
                return Err(format!("polynomial coef0 is not finite ({coef0})"));
            }
        }
    }
    if !model.bias().is_finite() {
        return Err(format!("bias is not finite ({})", model.bias()));
    }
    for (i, c) in model.coefficients().iter().enumerate() {
        if !c.is_finite() {
            return Err(format!("coefficient {i} is not finite ({c})"));
        }
    }
    for (i, sv) in model.support_vectors().iter().enumerate() {
        for (j, x) in sv.iter().enumerate() {
            if !x.is_finite() {
                return Err(format!(
                    "support vector {i} component {j} is not finite ({x})"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smo::{train, SmoConfig};

    fn trained() -> SvmModel {
        let xs = vec![
            vec![1.0, 1.5],
            vec![2.0, 2.5],
            vec![-1.0, -1.5],
            vec![-2.0, -2.5],
        ];
        let ys = vec![1.0, 1.0, -1.0, -1.0];
        train(&xs, &ys, Kernel::Rbf { gamma: 0.7 }, &SmoConfig::default())
    }

    #[test]
    fn round_trips_a_trained_model() {
        let model = trained();
        let back = model_from_text(&model_to_text(&model)).expect("parses");
        for x in [[1.5, 2.0], [-1.5, -2.0], [0.1, -0.1]] {
            assert_eq!(model.decision_function(&x), back.decision_function(&x));
        }
        assert_eq!(back.num_support_vectors(), model.num_support_vectors());
        assert_eq!(back.kernel(), model.kernel());
    }

    #[test]
    fn round_trips_all_kernels() {
        for kernel in [
            Kernel::Linear,
            Kernel::Rbf { gamma: 1.25 },
            Kernel::Polynomial {
                degree: 3,
                coef0: 0.5,
            },
        ] {
            let model = SvmModel::from_parts(kernel, vec![vec![1.0, -2.0]], vec![0.8], -0.3);
            let back = model_from_text(&model_to_text(&model)).expect("parses");
            assert_eq!(back.kernel(), kernel);
            assert_eq!(
                model.decision_function(&[0.4, 0.6]),
                back.decision_function(&[0.4, 0.6])
            );
        }
    }

    #[test]
    fn check_finite_flags_each_poisoned_field() {
        let healthy = trained();
        assert_eq!(check_finite(&healthy), Ok(()));

        let bad_bias = SvmModel::from_parts(Kernel::Linear, vec![vec![1.0]], vec![0.5], f64::NAN);
        assert!(check_finite(&bad_bias).unwrap_err().contains("bias"));

        let bad_coef =
            SvmModel::from_parts(Kernel::Linear, vec![vec![1.0]], vec![f64::INFINITY], 0.0);
        assert!(check_finite(&bad_coef)
            .unwrap_err()
            .contains("coefficient 0"));

        let bad_sv = SvmModel::from_parts(
            Kernel::Rbf { gamma: 0.5 },
            vec![vec![1.0, f64::NAN]],
            vec![0.5],
            0.0,
        );
        assert!(check_finite(&bad_sv)
            .unwrap_err()
            .contains("support vector 0 component 1"));

        let bad_gamma = SvmModel::from_parts(
            Kernel::Rbf {
                gamma: f64::INFINITY,
            },
            vec![vec![1.0]],
            vec![0.5],
            0.0,
        );
        assert!(check_finite(&bad_gamma).unwrap_err().contains("gamma"));
    }

    #[test]
    fn rejects_malformed_text() {
        assert_eq!(model_from_text(""), Err(ParseModelError::BadHeader));
        assert_eq!(model_from_text("nope\n"), Err(ParseModelError::BadHeader));
        assert_eq!(
            model_from_text("svm warp 1\n"),
            Err(ParseModelError::BadKernel)
        );
        assert_eq!(
            model_from_text("svm rbf x\n"),
            Err(ParseModelError::BadKernel)
        );
        assert_eq!(
            model_from_text("svm linear\n"),
            Err(ParseModelError::BadBias)
        );
        assert_eq!(
            model_from_text("svm linear\nbias 0.0\nxx 1 2\n"),
            Err(ParseModelError::BadSupportVector)
        );
        assert_eq!(
            model_from_text("svm linear\nbias 0.0\nsv 1 2\nsv 1 2 3\n"),
            Err(ParseModelError::InconsistentDimensions)
        );
    }
}
