//! Feature standardization.
//!
//! The disaster factors live on wildly different scales (mm/h, mph, meters);
//! SMO convergence and RBF width both want z-scored features.

use serde::{Deserialize, Serialize};

/// Per-feature z-score scaler: `x' = (x − μ) / σ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler to rows of equal dimension. Constant features get
    /// `σ = 1` so they pass through centered.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or rows differ in dimension.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler to zero rows");
        let dim = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == dim),
            "rows differ in dimension"
        );
        let n = rows.len() as f64;
        let mut means = vec![0.0; dim];
        for r in rows {
            for (m, x) in means.iter_mut().zip(r) {
                *m += x / n;
            }
        }
        let mut stds = vec![0.0; dim];
        for r in rows {
            for ((s, m), x) in stds.iter_mut().zip(&means).zip(r) {
                *s += (x - m) * (x - m) / n;
            }
        }
        for s in &mut stds {
            *s = s.sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Self { means, stds }
    }

    /// Reassembles a scaler from its parameters (persistence).
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length, are empty, or any σ is not
    /// positive.
    pub fn from_parts(means: Vec<f64>, stds: Vec<f64>) -> Self {
        assert_eq!(means.len(), stds.len(), "means/stds length mismatch");
        assert!(!means.is_empty(), "scaler must have at least one feature");
        assert!(
            stds.iter().all(|&s| s > 0.0),
            "standard deviations must be positive"
        );
        Self { means, stds }
    }

    /// Per-feature means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-feature standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Dimension the scaler was fitted on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Scales one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong dimension.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.dim());
        self.transform_into(row, &mut out);
        out
    }

    /// Scales one row into a caller-owned buffer (cleared first), so hot
    /// loops can standardize millions of rows without allocating per call.
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong dimension.
    pub fn transform_into(&self, row: &[f64], out: &mut Vec<f64>) {
        assert_eq!(row.len(), self.dim(), "row has wrong dimension");
        out.clear();
        out.extend(
            row.iter()
                .zip(self.means.iter().zip(&self.stds))
                .map(|(x, (m, s))| (x - m) / s),
        );
    }

    /// Appends the scaled row to a flat, row-major buffer (stride =
    /// [`StandardScaler::dim`]) — the batch layout
    /// [`crate::SvmModel::decision_batch`] consumes.
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong dimension.
    pub fn transform_append(&self, row: &[f64], out: &mut Vec<f64>) {
        assert_eq!(row.len(), self.dim(), "row has wrong dimension");
        out.extend(
            row.iter()
                .zip(self.means.iter().zip(&self.stds))
                .map(|(x, (m, s))| (x - m) / s),
        );
    }

    /// Scales many rows.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_features_have_zero_mean_unit_std() {
        let rows = vec![
            vec![10.0, 100.0],
            vec![20.0, 300.0],
            vec![30.0, 200.0],
            vec![40.0, 400.0],
        ];
        let scaler = StandardScaler::fit(&rows);
        let scaled = scaler.transform_all(&rows);
        for d in 0..2 {
            let mean: f64 = scaled.iter().map(|r| r[d]).sum::<f64>() / 4.0;
            let var: f64 = scaled.iter().map(|r| r[d] * r[d]).sum::<f64>() / 4.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_feature_passes_through_centered() {
        let rows = vec![vec![5.0], vec![5.0], vec![5.0]];
        let scaler = StandardScaler::fit(&rows);
        assert_eq!(scaler.transform(&[5.0]), vec![0.0]);
        assert_eq!(scaler.transform(&[7.0]), vec![2.0]);
    }

    #[test]
    fn buffered_transforms_match_the_allocating_path() {
        let rows = vec![vec![10.0, 100.0], vec![20.0, 300.0], vec![30.0, 200.0]];
        let scaler = StandardScaler::fit(&rows);
        let mut buf = Vec::new();
        let mut flat = Vec::new();
        for r in &rows {
            scaler.transform_into(r, &mut buf);
            assert_eq!(buf, scaler.transform(r));
            scaler.transform_append(r, &mut flat);
        }
        assert_eq!(flat.len(), rows.len() * scaler.dim());
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(&flat[i * 2..i * 2 + 2], scaler.transform(r).as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_fit_panics() {
        let _ = StandardScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn wrong_dim_transform_panics() {
        let scaler = StandardScaler::fit(&[vec![1.0, 2.0]]);
        let _ = scaler.transform(&[1.0]);
    }
}
