//! Support vector machine built from scratch for the MobiRescue request
//! predictor (Section IV-B).
//!
//! The paper classifies whether a person should be rescued from their
//! disaster-related factor vector with an SVM, citing kernels for non-linear
//! separability. This crate implements the full stack: kernels
//! ([`kernel::Kernel`]), z-score feature scaling ([`scale::StandardScaler`]),
//! Platt's SMO trainer ([`smo::train`]) and the trained decision function
//! ([`model::SvmModel`]), plus the confusion-matrix metrics of Figures 15–16
//! ([`metrics::ConfusionMatrix`]).
//!
//! # Examples
//!
//! ```
//! use mobirescue_svm::{train, Kernel, SmoConfig};
//!
//! let xs = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![-1.0, -1.0], vec![-2.0, -2.0]];
//! let ys = vec![1.0, 1.0, -1.0, -1.0];
//! let model = train(&xs, &ys, Kernel::Linear, &SmoConfig::default());
//! assert!(model.predict(&[1.5, 1.5]));
//! assert!(!model.predict(&[-1.5, -1.5]));
//! ```

#![warn(missing_docs)]

pub mod kernel;
pub mod metrics;
pub mod model;
pub mod persist;
pub mod scale;
pub mod smo;

pub use kernel::Kernel;
pub use metrics::ConfusionMatrix;
pub use model::SvmModel;
pub use persist::{model_from_text, model_to_text, ParseModelError};
pub use scale::StandardScaler;
pub use smo::{train, SmoConfig};
