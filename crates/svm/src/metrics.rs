//! Binary-classification metrics.
//!
//! The paper evaluates prediction with accuracy `(TP+TN)/(TP+TN+FP+FN)` and
//! precision `TP/(TP+FP)` per road segment (Figures 15–16); the
//! [`ConfusionMatrix`] carries all four counters.

use serde::{Deserialize, Serialize};

/// Counts of true/false positives/negatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// People correctly predicted as sending rescue requests.
    pub tp: usize,
    /// People incorrectly predicted as sending rescue requests.
    pub fp: usize,
    /// People correctly predicted as not sending requests.
    pub tn: usize,
    /// People incorrectly predicted as not sending requests.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Builds the matrix from `(predicted, actual)` pairs.
    pub fn from_predictions<I: IntoIterator<Item = (bool, bool)>>(pairs: I) -> Self {
        let mut m = Self::default();
        for (pred, actual) in pairs {
            m.record(pred, actual);
        }
        m
    }

    /// Records one prediction.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Total predictions recorded.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// `(TP+TN) / total`, or `None` when empty.
    pub fn accuracy(&self) -> Option<f64> {
        (self.total() > 0).then(|| (self.tp + self.tn) as f64 / self.total() as f64)
    }

    /// `TP / (TP+FP)`, or `None` when nothing was predicted positive.
    pub fn precision(&self) -> Option<f64> {
        (self.tp + self.fp > 0).then(|| self.tp as f64 / (self.tp + self.fp) as f64)
    }

    /// `TP / (TP+FN)`, or `None` when there are no actual positives.
    pub fn recall(&self) -> Option<f64> {
        (self.tp + self.fn_ > 0).then(|| self.tp as f64 / (self.tp + self.fn_) as f64)
    }

    /// Harmonic mean of precision and recall, or `None` when undefined.
    pub fn f1(&self) -> Option<f64> {
        let p = self.precision()?;
        let r = self.recall()?;
        (p + r > 0.0).then(|| 2.0 * p * r / (p + r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_metrics() {
        let m = ConfusionMatrix::from_predictions([
            (true, true),
            (true, true),
            (true, false),
            (false, false),
            (false, false),
            (false, true),
        ]);
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (2, 1, 2, 1));
        assert_eq!(m.total(), 6);
        assert!((m.accuracy().unwrap() - 4.0 / 6.0).abs() < 1e-12);
        assert!((m.precision().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn undefined_metrics_are_none() {
        let empty = ConfusionMatrix::default();
        assert!(empty.accuracy().is_none());
        assert!(empty.precision().is_none());
        assert!(empty.recall().is_none());
        let all_neg = ConfusionMatrix::from_predictions([(false, false)]);
        assert!(all_neg.precision().is_none());
        assert!(all_neg.recall().is_none());
        assert_eq!(all_neg.accuracy(), Some(1.0));
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = ConfusionMatrix::from_predictions([(true, true)]);
        let b = ConfusionMatrix::from_predictions([(false, true), (true, false)]);
        a.merge(&b);
        assert_eq!((a.tp, a.fp, a.tn, a.fn_), (1, 1, 0, 1));
    }
}
