//! Property-based tests for the SVM stack.

use mobirescue_svm::{train, ConfusionMatrix, Kernel, SmoConfig, StandardScaler};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Kernels are symmetric and RBF is bounded in (0, 1].
    #[test]
    fn kernel_properties(
        x in prop::collection::vec(-10.0f64..10.0, 3),
        y in prop::collection::vec(-10.0f64..10.0, 3),
        gamma in 0.01f64..5.0,
    ) {
        for k in [Kernel::Linear, Kernel::Rbf { gamma }] {
            prop_assert!((k.eval(&x, &y) - k.eval(&y, &x)).abs() < 1e-9);
        }
        let rbf = Kernel::Rbf { gamma };
        // exp underflows to exactly 0.0 at extreme distances, so the lower
        // bound is inclusive.
        let v = rbf.eval(&x, &y);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        prop_assert!((rbf.eval(&x, &x) - 1.0).abs() < 1e-12);
    }

    /// The scaler's output is exactly invertible information: transform is
    /// affine, so ordering along each axis is preserved.
    #[test]
    fn scaler_preserves_order(
        rows in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 2), 3..20),
        probe_a in -100.0f64..100.0,
        probe_b in -100.0f64..100.0,
    ) {
        let scaler = StandardScaler::fit(&rows);
        let a = scaler.transform(&[probe_a, 0.0]);
        let b = scaler.transform(&[probe_b, 0.0]);
        prop_assert_eq!(probe_a < probe_b, a[0] < b[0]);
    }

    /// Training on well-separated clusters always classifies the cluster
    /// centers correctly, regardless of sample layout.
    #[test]
    fn separable_clusters_are_learned(
        seed in 0u64..50,
        offsets in prop::collection::vec(-0.5f64..0.5, 16),
    ) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (i, off) in offsets.iter().enumerate() {
            let label = if i % 2 == 0 { 1.0 } else { -1.0 };
            xs.push(vec![3.0 * label + off, 3.0 * label - off]);
            ys.push(label);
        }
        let cfg = SmoConfig { seed, ..SmoConfig::default() };
        let model = train(&xs, &ys, Kernel::Rbf { gamma: 0.5 }, &cfg);
        prop_assert!(model.predict(&[3.0, 3.0]));
        prop_assert!(!model.predict(&[-3.0, -3.0]));
    }

    /// Confusion-matrix metrics stay in [0, 1] and accuracy decomposes.
    #[test]
    fn confusion_metrics_bounded(
        pairs in prop::collection::vec((any::<bool>(), any::<bool>()), 1..60),
    ) {
        let m = ConfusionMatrix::from_predictions(pairs.clone());
        prop_assert_eq!(m.total(), pairs.len());
        for metric in [m.accuracy(), m.precision(), m.recall(), m.f1()].into_iter().flatten() {
            prop_assert!((0.0..=1.0).contains(&metric));
        }
        if let Some(acc) = m.accuracy() {
            let expect = pairs.iter().filter(|(p, a)| p == a).count() as f64 / pairs.len() as f64;
            prop_assert!((acc - expect).abs() < 1e-12);
        }
    }

    /// Persisting a trained model is byte-stable: save → load → save
    /// produces the identical text, so checkpoints can be compared and
    /// deduplicated by content (the serving hot-swap path relies on this).
    #[test]
    fn persist_save_load_save_is_byte_stable(
        seed in 0u64..50,
        gamma in 0.05f64..2.0,
        offsets in prop::collection::vec(-0.8f64..0.8, 8..24),
        linear in any::<bool>(),
    ) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (i, off) in offsets.iter().enumerate() {
            let label = if i % 2 == 0 { 1.0 } else { -1.0 };
            xs.push(vec![2.0 * label + off, 2.0 * label - off, *off]);
            ys.push(label);
        }
        let kernel = if linear { Kernel::Linear } else { Kernel::Rbf { gamma } };
        let cfg = SmoConfig { seed, ..SmoConfig::default() };
        let model = train(&xs, &ys, kernel, &cfg);
        let text = mobirescue_svm::model_to_text(&model);
        let reloaded = mobirescue_svm::model_from_text(&text).expect("own output parses");
        prop_assert_eq!(mobirescue_svm::model_to_text(&reloaded), text);
    }
}
