//! The MobiRescue dispatcher: SVM-predicted demand + RL dispatch
//! (Sections IV-B and IV-C).
//!
//! Every dispatch period the dispatcher (1) predicts the distribution of
//! potential rescue requests per segment with the SVM over live people
//! positions and disaster factors, (2) aggregates demand into zones (see
//! [`crate::zones`] for the action-space note), and (3) lets a learned
//! Q-network choose a destination zone — or stand-by — for every team
//! sequentially, decrementing remaining demand between teams. The Q-network
//! scores `(team, zone)` *feature* pairs (distance, live demand, predicted
//! demand, load, stand-by flag) with weights shared across zones, so one
//! simulated disaster day already provides hundreds of gradient steps per
//! zone-like situation.
//!
//! The reward is Equation 5, `r = α·N^q − β·T^d − γ·N^m`, densified with a
//! demand-coverage shaping term, and is computed online from observed state
//! transitions so the model "keeps training while running"
//! (Section IV-C4).

use crate::predictor::RequestPredictor;
use crate::scenario::Scenario;
use crate::zones::{ZoneId, ZoneMap};
use mobirescue_mobility::map_match::MapMatcher;
use mobirescue_obs::PhaseTimer;
use mobirescue_rl::qscore::{PairTransition, QScore, QScoreConfig};
use mobirescue_roadnet::geo::GeoPoint;
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_sim::dispatcher::{DispatchState, Dispatcher};
use mobirescue_sim::types::{DispatchPlan, Order, RequestId};
use std::cell::Cell;
use std::collections::HashSet;

/// Dimension of one `(team, zone)` feature vector — the input width any
/// externally loaded policy network must match.
pub const FEATURE_DIM: usize = 6;

/// Reward weights and learning settings of the RL dispatcher.
#[derive(Debug, Clone, PartialEq)]
pub struct RlDispatchConfig {
    /// Zone grid side length (zones = k²).
    pub zone_k: usize,
    /// Reward weight α on served requests.
    pub alpha: f64,
    /// Reward weight β on total driving delay (hours).
    pub beta: f64,
    /// Reward weight γ on the number of serving teams.
    pub gamma_weight: f64,
    /// Weight of SVM-predicted (vs. live) demand when targeting.
    pub predicted_weight: f64,
    /// Reward-shaping weight on demand coverage: each team choosing a zone
    /// immediately earns `min(remaining demand, capacity)/capacity` ×
    /// this, which gives the sparse Equation-5 reward a dense gradient
    /// toward "drive where requests are".
    pub shaping_coverage: f64,
    /// Hidden layers of the scoring network.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub lr: f64,
    /// TD discount.
    pub discount: f64,
    /// Learn on every n-th observed transition (cost control).
    pub learn_every: usize,
    /// Modeled computation latency per dispatch round, seconds (the paper
    /// reports <0.5 s once trained).
    pub latency_s: f64,
    /// Team capacity assumed when decrementing zone demand (match the
    /// simulator's).
    pub capacity: usize,
    /// Steps over which exploration anneals — size this to the offline
    /// training budget (≈ 0.5 × episodes × rounds × teams).
    pub eps_decay_steps: u64,
    /// Seed for the policy network.
    pub seed: u64,
}

impl Default for RlDispatchConfig {
    fn default() -> Self {
        Self {
            zone_k: 4,
            alpha: 10.0,
            beta: 0.5,
            gamma_weight: 0.02,
            predicted_weight: 0.6,
            shaping_coverage: 1.0,
            hidden: vec![32, 32],
            lr: 1e-3,
            discount: 0.9,
            learn_every: 2,
            latency_s: 0.4,
            capacity: 5,
            eps_decay_steps: 2_000,
            seed: 0,
        }
    }
}

/// One team's decision in a round, with the quantities its own reward
/// terms are computed from — Equation 5's global reward is decomposed per
/// decision so that each team's credit reflects *its* choice (a shared
/// scalar would make Q constant across actions).
#[derive(Debug, Clone)]
struct Decision {
    team_index: usize,
    /// Features of the chosen action.
    features: Vec<f64>,
    /// Demand coverage earned by this choice (`min(remaining, c)/c`).
    covered: f64,
    /// Estimated driving delay of this choice, seconds.
    delay_s: f64,
    /// Whether this choice deploys the team (counts toward N^m).
    serving: bool,
}

/// State/action bookkeeping of the previous dispatch round, used for the
/// online Equation-5 reward.
#[derive(Debug)]
struct PrevRound {
    decisions: Vec<Decision>,
    waiting_ids: HashSet<RequestId>,
}

/// The MobiRescue dispatcher (implements [`Dispatcher`]).
#[derive(Debug)]
pub struct MobiRescueDispatcher<'a> {
    config: RlDispatchConfig,
    scenario: &'a Scenario,
    zones: ZoneMap,
    matcher: MapMatcher,
    predictor: Option<RequestPredictor>,
    policy: QScore,
    training: bool,
    /// Emit `(features, reward, next_candidates)` transitions into
    /// [`MobiRescueDispatcher::take_tapped_transitions`] without touching
    /// the policy — the serve-layer trainer's feed from frozen dispatchers.
    tap: bool,
    tapped: Vec<PairTransition>,
    /// Zone anchors' positions (`None` for empty zones).
    anchor_pos: Vec<Option<GeoPoint>>,
    /// Normalization scale for distances (city diameter, meters).
    diameter_m: f64,
    cached_pred_hour: Option<u32>,
    cached_pred: Vec<f64>,
    /// Per-round scratch (per-segment demand/live tallies and the candidate
    /// feature/action lists), reused across every dispatch round so the
    /// epoch loop allocates nothing proportional to world size after the
    /// first tick.
    demand: Vec<f64>,
    live: Vec<f64>,
    cand_feats: Vec<Vec<f64>>,
    cand_actions: Vec<Option<ZoneId>>,
    prev: Option<PrevRound>,
    observed: usize,
    phase_timer: PhaseTimer,
    predict_ms: Cell<u64>,
    /// Cumulative Equation-5 reward (diagnostics / training curves).
    pub episode_reward: f64,
}

impl<'a> MobiRescueDispatcher<'a> {
    /// Builds the dispatcher for an evaluation scenario. `predictor` is the
    /// SVM trained on the *training* scenario (pass `None` to ablate
    /// prediction and dispatch on live requests only).
    pub fn new(
        scenario: &'a Scenario,
        predictor: Option<RequestPredictor>,
        config: RlDispatchConfig,
    ) -> Self {
        let zones = ZoneMap::new(&scenario.city, config.zone_k);
        let matcher = MapMatcher::new(&scenario.city.network);
        let mut qcfg = QScoreConfig::new(FEATURE_DIM);
        qcfg.hidden = config.hidden.clone();
        qcfg.lr = config.lr;
        qcfg.gamma = config.discount;
        qcfg.seed = config.seed;
        qcfg.eps_decay_steps = config.eps_decay_steps;
        let policy = QScore::new(qcfg);
        let anchor_pos = (0..zones.num_zones())
            .map(|z| {
                zones
                    .anchor(ZoneId(z as u16))
                    .map(|lm| scenario.city.network.landmark(lm).position)
            })
            .collect();
        let bbox = scenario
            .city
            .network
            .bounding_box()
            .expect("city network is non-empty");
        let diameter_m = bbox.south_west.distance_m(bbox.north_east).max(1.0);
        Self {
            config,
            scenario,
            zones,
            matcher,
            predictor,
            policy,
            training: true,
            tap: false,
            tapped: Vec::new(),
            anchor_pos,
            diameter_m,
            cached_pred_hour: None,
            cached_pred: Vec::new(),
            demand: Vec::new(),
            live: Vec::new(),
            cand_feats: Vec::new(),
            cand_actions: Vec::new(),
            prev: None,
            observed: 0,
            phase_timer: PhaseTimer::disabled(),
            predict_ms: Cell::new(0),
            episode_reward: 0.0,
        }
    }

    /// Installs the clock SVM-prediction time is measured on; without one
    /// (the default) measurement is skipped entirely.
    pub fn set_time_source(&mut self, timer: PhaseTimer) {
        self.phase_timer = timer;
    }

    /// Milliseconds spent inside `predict_distribution` since the last
    /// call (reset on read). Cache hits cost ~0; the hourly cache miss is
    /// the SVM inference the serve runtime reports as the predict phase.
    pub fn take_predict_ms(&self) -> u64 {
        self.predict_ms.replace(0)
    }

    /// Switches between training (ε-greedy + online updates) and frozen
    /// greedy evaluation.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Whether online training is active.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Turns the transition tap on or off. While on, every round's online
    /// Equation-5 transitions are buffered for
    /// [`MobiRescueDispatcher::take_tapped_transitions`] — *without*
    /// changing action selection or the policy, so a frozen dispatcher
    /// behaves bit-identically to an untapped one.
    pub fn set_transition_tap(&mut self, tap: bool) {
        self.tap = tap;
        if !tap {
            self.tapped.clear();
        }
    }

    /// Whether the transition tap is on.
    pub fn is_tapping(&self) -> bool {
        self.tap
    }

    /// Drains the transitions buffered since the last call (insertion
    /// order: round by round, team by team).
    pub fn take_tapped_transitions(&mut self) -> Vec<PairTransition> {
        std::mem::take(&mut self.tapped)
    }

    /// The zone map in use.
    pub fn zones(&self) -> &ZoneMap {
        &self.zones
    }

    /// Direct access to the underlying policy (ablations, inspection).
    pub fn policy(&self) -> &QScore {
        &self.policy
    }

    /// Extracts the trained policy (to transplant it from the training
    /// scenario's dispatcher into the evaluation one, as the paper moves
    /// the Michael-trained model onto Florence).
    pub fn into_policy(self) -> QScore {
        self.policy
    }

    /// Builds a dispatcher around an already-trained policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy's feature dimension mismatches.
    pub fn with_policy(
        scenario: &'a Scenario,
        predictor: Option<RequestPredictor>,
        config: RlDispatchConfig,
        policy: QScore,
    ) -> Self {
        assert_eq!(
            policy.config().feature_dim,
            FEATURE_DIM,
            "policy feature dimension mismatch"
        );
        let mut d = Self::new(scenario, predictor, config);
        d.policy = policy;
        d
    }

    /// Like [`MobiRescueDispatcher::with_policy`] but rejects a mismatched
    /// policy instead of panicking — the hot-swap path of a long-running
    /// service must survive a bad checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch when the policy's feature
    /// dimension is not [`FEATURE_DIM`].
    pub fn try_with_policy(
        scenario: &'a Scenario,
        predictor: Option<RequestPredictor>,
        config: RlDispatchConfig,
        policy: QScore,
    ) -> Result<Self, String> {
        if policy.config().feature_dim != FEATURE_DIM {
            return Err(format!(
                "policy scores {}-dimensional features, dispatcher needs {FEATURE_DIM}",
                policy.config().feature_dim
            ));
        }
        Ok(Self::with_policy(scenario, predictor, config, policy))
    }

    /// Clears cross-round state at an episode boundary (between simulated
    /// days during offline training).
    pub fn reset_episode(&mut self) {
        self.prev = None;
        self.cached_pred_hour = None;
        self.episode_reward = 0.0;
        self.tapped.clear();
    }

    /// Refreshes the per-segment scratch tallies for this round:
    /// `self.demand` (live waiting requests plus weighted SVM prediction,
    /// the prediction cached per hour) and `self.live` (waiting requests
    /// only). Buffers are reused across rounds.
    fn refresh_demand(&mut self, state: &DispatchState<'_>) {
        let n = state.net.num_segments();
        if let Some(pred) = &self.predictor {
            if self.cached_pred_hour != Some(state.hour) {
                let t0 = self.phase_timer.now_ms();
                self.cached_pred =
                    pred.predict_distribution(self.scenario, &self.matcher, state.hour);
                self.predict_ms
                    .set(self.predict_ms.get() + self.phase_timer.elapsed_since(t0));
                self.cached_pred_hour = Some(state.hour);
            }
        } else if self.cached_pred.len() != n {
            self.cached_pred.clear();
            self.cached_pred.resize(n, 0.0);
        }
        self.demand.clear();
        self.demand.resize(n, 0.0);
        for (i, &p) in self.cached_pred.iter().enumerate() {
            self.demand[i] = p * self.config.predicted_weight;
        }
        self.live.clear();
        self.live.resize(n, 0.0);
        for r in state.waiting {
            self.demand[r.segment.index()] += 1.0;
            self.live[r.segment.index()] += 1.0;
        }
    }

    /// Candidate `(team, action)` features: one entry per non-empty zone
    /// plus the final stand-by candidate. Returns `(features, action)`
    /// pairs where `action = Some(zone)` or `None` for stand-by. The decide
    /// loop uses [`fill_candidates`] with reused buffers instead; this
    /// owned variant serves the reward path, whose candidate sets outlive
    /// the round inside stored transitions.
    fn candidates(
        &self,
        team_pos: GeoPoint,
        onboard_frac: f64,
        remaining: &[f64],
        live_zone: &[f64],
    ) -> (Vec<Vec<f64>>, Vec<Option<ZoneId>>) {
        let mut feats = Vec::with_capacity(self.zones.num_zones() + 1);
        let mut actions = Vec::with_capacity(self.zones.num_zones() + 1);
        fill_candidates(
            &self.anchor_pos,
            self.diameter_m,
            team_pos,
            onboard_frac,
            remaining,
            live_zone,
            &mut feats,
            &mut actions,
        );
        (feats, actions)
    }

    /// The pickup segment for a team sent to `zone`: the *nearest* segment
    /// with a live (certain) request, else the most predicted-demand
    /// segment, else a segment at the zone anchor.
    fn target_segment_in(
        &self,
        zone: ZoneId,
        team_pos: GeoPoint,
        live: &[f64],
        demand: &[f64],
        state: &DispatchState<'_>,
    ) -> Option<SegmentId> {
        let segs = self.zones.segments_in(zone);
        let nearest_live = segs
            .iter()
            .filter(|s| live[s.index()] > 0.0)
            .min_by(|a, b| {
                let da = state.net.segment_midpoint(**a).distance_m(team_pos);
                let db = state.net.segment_midpoint(**b).distance_m(team_pos);
                da.partial_cmp(&db).expect("distances are never NaN")
            })
            .copied();
        nearest_live
            .or_else(|| {
                segs.iter()
                    .filter(|s| demand[s.index()] > 0.0 && state.condition.is_operable(**s))
                    .max_by(|a, b| {
                        demand[a.index()]
                            .partial_cmp(&demand[b.index()])
                            .expect("demand is never NaN")
                    })
                    .copied()
            })
            .or_else(|| {
                let anchor = self.zones.anchor(zone)?;
                state.net.out_segments(anchor).first().copied()
            })
    }
}

/// Writes one team's candidate `(team, action)` feature set into
/// caller-owned buffers, recycling the inner feature-vector allocations
/// from the previous call — every dispatch round scores candidates for
/// every free team, so the per-candidate `Vec` churn was a measurable
/// fraction of the frozen-policy dispatch tick.
#[allow(clippy::too_many_arguments)]
fn fill_candidates(
    anchor_pos: &[Option<GeoPoint>],
    diameter_m: f64,
    team_pos: GeoPoint,
    onboard_frac: f64,
    remaining: &[f64],
    live_zone: &[f64],
    feats: &mut Vec<Vec<f64>>,
    actions: &mut Vec<Option<ZoneId>>,
) {
    let squash = |d: f64| d / (d + 3.0);
    let total: f64 = remaining.iter().sum();
    actions.clear();
    let mut used = 0;
    let mut slot = |feats: &mut Vec<Vec<f64>>, row: [f64; FEATURE_DIM]| {
        if used < feats.len() {
            feats[used].clear();
            feats[used].extend_from_slice(&row);
        } else {
            feats.push(row.to_vec());
        }
        used += 1;
    };
    for (z, pos) in anchor_pos.iter().enumerate() {
        let Some(pos) = pos else { continue };
        slot(
            feats,
            [
                team_pos.distance_m(*pos) / diameter_m,
                squash(remaining[z]),
                squash(live_zone[z]),
                squash(total),
                onboard_frac,
                0.0,
            ],
        );
        actions.push(Some(ZoneId(z as u16)));
    }
    slot(feats, [0.0, 0.0, 0.0, squash(total), onboard_frac, 1.0]);
    actions.push(None);
    feats.truncate(used);
}

impl Dispatcher for MobiRescueDispatcher<'_> {
    fn name(&self) -> &str {
        if self.predictor.is_some() {
            "MobiRescue"
        } else {
            "MobiRescue-NoPredict"
        }
    }

    fn compute_latency_s(&self, _state: &DispatchState<'_>) -> f64 {
        self.config.latency_s
    }

    fn dispatch(&mut self, state: &DispatchState<'_>) -> DispatchPlan {
        self.refresh_demand(state);
        let mut remaining = self.zones.aggregate_demand(&self.demand);
        let live_zone = self.zones.aggregate_demand(&self.live);
        // The waiting-id set only feeds the reward path; a frozen, untapped
        // dispatcher skips building it (HashSet::new is allocation-free).
        let now_waiting: HashSet<RequestId> = if self.training || self.tap {
            state.waiting.iter().map(|r| r.id).collect()
        } else {
            HashSet::new()
        };

        // Online Equation-5 reward for the previous round.
        if self.training || self.tap {
            if let Some(prev) = self.prev.take() {
                let served = prev
                    .waiting_ids
                    .iter()
                    .filter(|id| !now_waiting.contains(id))
                    .count();
                let n = prev.decisions.len().max(1) as f64;
                let total_delay: f64 = prev.decisions.iter().map(|d| d.delay_s).sum();
                let total_serving = prev.decisions.iter().filter(|d| d.serving).count() as f64;
                self.episode_reward += self.config.alpha * served as f64
                    - self.config.beta * (total_delay / 3_600.0)
                    - self.config.gamma_weight * total_serving;
                // The served term is shared (no per-team attribution is
                // observable); delay, deployment and coverage shaping are
                // each decision's own.
                let shared = self.config.alpha * served as f64 / n;
                for d in prev.decisions {
                    let reward = shared + self.config.shaping_coverage * d.covered
                        - self.config.beta * (d.delay_s / 3_600.0)
                        - self.config.gamma_weight * f64::from(d.serving);
                    let team = &state.teams[d.team_index];
                    let pos = state.net.landmark(team.location).position;
                    let (mut next_candidates, _) = self.candidates(
                        pos,
                        team.onboard as f64 / self.config.capacity as f64,
                        &remaining,
                        &live_zone,
                    );
                    // Bound the stored candidate set: every replayed TD
                    // update evaluates all of them, which is quadratic pain
                    // at fine zone grids. Keep the highest-demand zones
                    // plus stand-by (the max rarely lives elsewhere).
                    const MAX_STORED_CANDIDATES: usize = 80;
                    if next_candidates.len() > MAX_STORED_CANDIDATES {
                        let standby = next_candidates.pop().expect("stand-by is always present");
                        next_candidates.sort_by(|a, b| {
                            (b[1], b[2])
                                .partial_cmp(&(a[1], a[2]))
                                .expect("features are never NaN")
                        });
                        next_candidates.truncate(MAX_STORED_CANDIDATES - 1);
                        next_candidates.push(standby);
                    }
                    let t = PairTransition {
                        features: d.features,
                        reward,
                        next_candidates,
                    };
                    if self.training {
                        if self.tap {
                            self.tapped.push(t.clone());
                        }
                        self.observed += 1;
                        if self.observed.is_multiple_of(self.config.learn_every) {
                            let _ = self.policy.observe(t);
                        } else {
                            self.policy.store(t);
                        }
                    } else if self.tap {
                        self.tapped.push(t);
                    }
                }
            }
        }

        // Decide this round. Decisions (with their cloned feature vectors)
        // are only recorded when the reward path will consume them.
        let record = self.training || self.tap;
        let mut plan = DispatchPlan::none(state.teams.len());
        let mut decisions = Vec::new();
        for team in state.teams {
            if team.delivering || team.onboard >= self.config.capacity {
                continue;
            }
            let pos = state.net.landmark(team.location).position;
            let onboard_frac = team.onboard as f64 / self.config.capacity as f64;
            let mut feats = std::mem::take(&mut self.cand_feats);
            let mut actions = std::mem::take(&mut self.cand_actions);
            fill_candidates(
                &self.anchor_pos,
                self.diameter_m,
                pos,
                onboard_frac,
                &remaining,
                &live_zone,
                &mut feats,
                &mut actions,
            );
            let idx = if self.training {
                self.policy.act(&feats)
            } else {
                self.policy.best(&feats)
            };
            let mut decision = Decision {
                team_index: team.id.index(),
                features: if record {
                    feats[idx].clone()
                } else {
                    Vec::new()
                },
                covered: 0.0,
                delay_s: 0.0,
                serving: false,
            };
            let action = actions[idx];
            self.cand_feats = feats;
            self.cand_actions = actions;
            match action {
                None => {
                    if !team.standby {
                        plan.orders[team.id.index()] = Some(Order::ReturnToBase);
                    }
                }
                Some(zone) => {
                    if let Some(seg) =
                        self.target_segment_in(zone, pos, &self.live, &self.demand, state)
                    {
                        plan.orders[team.id.index()] = Some(Order::GoToSegment(seg));
                        let target = state.net.segment_midpoint(seg);
                        let cap = self.config.capacity as f64;
                        decision.serving = true;
                        decision.delay_s = pos.distance_m(target) / 8.0;
                        decision.covered = remaining[zone.index()].min(cap) / cap;
                        remaining[zone.index()] = (remaining[zone.index()] - cap).max(0.0);
                    }
                }
            }
            if record {
                decisions.push(decision);
            }
        }

        if record {
            self.prev = Some(PrevRound {
                decisions,
                waiting_ids: now_waiting,
            });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{PredictorConfig, RequestPredictor};
    use crate::scenario::ScenarioConfig;
    use mobirescue_sim::dispatcher::NearestRequestDispatcher;
    use mobirescue_sim::types::{RequestSpec, SimConfig};

    fn florence() -> Scenario {
        ScenarioConfig::small().florence().build(47)
    }

    #[test]
    fn dispatches_without_crashing_and_orders_teams() {
        let scenario = florence();
        let michael = ScenarioConfig::small().michael().build(47);
        let predictor = RequestPredictor::train_on(&michael, &PredictorConfig::default());
        let mut d =
            MobiRescueDispatcher::new(&scenario, Some(predictor), RlDispatchConfig::default());
        let requests: Vec<RequestSpec> = (0..10)
            .map(|i| RequestSpec {
                appear_s: i * 200,
                segment: SegmentId((i * 31) % scenario.city.network.num_segments() as u32),
            })
            .collect();
        let cfg = SimConfig::small(24);
        let outcome = mobirescue_sim::run(
            &scenario.city,
            &scenario.conditions,
            &requests,
            &mut d,
            &cfg,
        );
        assert_eq!(outcome.dispatcher, "MobiRescue");
        assert!(outcome.dispatch_rounds > 0);
        assert!(outcome.total_served() > 0, "no requests served at all");
    }

    #[test]
    fn latency_is_sub_second() {
        let scenario = florence();
        let d = MobiRescueDispatcher::new(&scenario, None, RlDispatchConfig::default());
        assert!(d.config.latency_s < 0.5);
        assert_eq!(d.name(), "MobiRescue-NoPredict");
    }

    #[test]
    fn frozen_dispatcher_is_deterministic() {
        let scenario = florence();
        let requests: Vec<RequestSpec> = (0..8)
            .map(|i| RequestSpec {
                appear_s: i * 300,
                segment: SegmentId(i * 11),
            })
            .collect();
        let cfg = SimConfig::small(24);
        let run = |seed: u64| {
            let mut d = MobiRescueDispatcher::new(
                &scenario,
                None,
                RlDispatchConfig {
                    seed,
                    ..Default::default()
                },
            );
            d.set_training(false);
            mobirescue_sim::run(
                &scenario.city,
                &scenario.conditions,
                &requests,
                &mut d,
                &cfg,
            )
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn online_training_accumulates_reward_signal() {
        let scenario = florence();
        let mut d = MobiRescueDispatcher::new(&scenario, None, RlDispatchConfig::default());
        let requests: Vec<RequestSpec> = (0..20)
            .map(|i| RequestSpec {
                appear_s: i * 100,
                segment: SegmentId(i * 7),
            })
            .collect();
        let cfg = SimConfig::small(24);
        let _ = mobirescue_sim::run(
            &scenario.city,
            &scenario.conditions,
            &requests,
            &mut d,
            &cfg,
        );
        assert!(
            d.policy().learn_steps() > 0,
            "online training never learned"
        );
        d.reset_episode();
        assert_eq!(d.episode_reward, 0.0);
    }

    #[test]
    fn trained_policy_prefers_demand_zones() {
        // After offline training on its own scenario, the policy should
        // score "nearby zone full of requests" above "stand by" for an
        // empty team.
        let scenario = florence();
        let mut d = MobiRescueDispatcher::new(&scenario, None, RlDispatchConfig::default());
        let rescues = crate::predictor::mine_rescues(&scenario);
        let day = crate::training::busiest_request_day(&rescues).expect("rescues exist");
        let matcher = MapMatcher::new(&scenario.city.network);
        let requests = crate::training::requests_on_day(&scenario, &matcher, &rescues, day);
        let mut cfg = SimConfig::small(day * 24);
        cfg.duration_hours = 12;
        for _ in 0..4 {
            d.reset_episode();
            let _ = mobirescue_sim::run(
                &scenario.city,
                &scenario.conditions,
                &requests,
                &mut d,
                &cfg,
            );
        }
        // Near zone with live demand vs stand-by.
        let go = vec![0.05, 0.6, 0.6, 0.6, 0.0, 0.0];
        let stay = vec![0.0, 0.0, 0.0, 0.6, 0.0, 1.0];
        assert!(
            d.policy().q(&go) > d.policy().q(&stay),
            "go {} vs stay {}",
            d.policy().q(&go),
            d.policy().q(&stay)
        );
    }

    #[test]
    fn tap_on_a_frozen_dispatcher_yields_transitions_without_changing_dispatch() {
        let scenario = florence();
        let requests: Vec<RequestSpec> = (0..12)
            .map(|i| RequestSpec {
                appear_s: i * 200,
                segment: SegmentId(i * 9),
            })
            .collect();
        let cfg = SimConfig::small(24);
        let run = |tap: bool| {
            let mut d = MobiRescueDispatcher::new(
                &scenario,
                None,
                RlDispatchConfig {
                    seed: 3,
                    ..Default::default()
                },
            );
            d.set_training(false);
            d.set_transition_tap(tap);
            let outcome = mobirescue_sim::run(
                &scenario.city,
                &scenario.conditions,
                &requests,
                &mut d,
                &cfg,
            );
            let transitions = d.take_tapped_transitions();
            (outcome, transitions, d.policy().learn_steps())
        };
        let (tapped_outcome, transitions, learned) = run(true);
        let (clean_outcome, none, _) = run(false);
        assert_eq!(
            tapped_outcome.requests, clean_outcome.requests,
            "the tap must not perturb dispatch"
        );
        assert!(!transitions.is_empty(), "tap captured nothing");
        assert!(none.is_empty(), "untapped run must capture nothing");
        assert_eq!(learned, 0, "a frozen dispatcher must never learn");
        for t in &transitions {
            assert_eq!(t.features.len(), FEATURE_DIM);
            assert!(t.reward.is_finite());
            assert!(t.next_candidates.iter().all(|c| c.len() == FEATURE_DIM));
        }
    }

    #[test]
    fn naive_baseline_still_works_side_by_side() {
        let scenario = florence();
        let requests: Vec<RequestSpec> = (0..10)
            .map(|i| RequestSpec {
                appear_s: i * 120,
                segment: SegmentId(i * 13),
            })
            .collect();
        let cfg = SimConfig::small(24);
        let naive = mobirescue_sim::run(
            &scenario.city,
            &scenario.conditions,
            &requests,
            &mut NearestRequestDispatcher::default(),
            &cfg,
        );
        assert!(naive.total_served() > 5);
    }
}
