//! Section IV-C5 extensions: factor sets beyond hurricanes and the
//! historical-position fallback.
//!
//! The paper notes that "the disaster-related factors … should be selected
//! according to different types of disasters" and sketches
//! (seismic magnitude, altitude, building density) for earthquakes. The
//! [`FactorSetPredictor`] generalizes [`crate::predictor::RequestPredictor`]
//! over any [`FactorSet`], so a different disaster type only needs a new
//! factor implementation — not a new training pipeline.

use crate::predictor::mine_rescues;
use crate::scenario::Scenario;
use mobirescue_disaster::factors::FactorSet;
use mobirescue_svm::{train, Kernel, SmoConfig, StandardScaler, SvmModel};

/// Configuration of the generic predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorSetPredictorConfig {
    /// SVM kernel.
    pub kernel: Kernel,
    /// SMO settings.
    pub smo: SmoConfig,
    /// Cap on training examples.
    pub max_examples: usize,
}

impl Default for FactorSetPredictorConfig {
    fn default() -> Self {
        Self {
            kernel: Kernel::Rbf { gamma: 0.5 },
            smo: SmoConfig {
                c: 2.0,
                ..SmoConfig::default()
            },
            max_examples: 1_200,
        }
    }
}

/// A rescue-request classifier trained over an arbitrary factor set.
#[derive(Debug)]
pub struct FactorSetPredictor<F: FactorSet> {
    factor_set: F,
    scaler: StandardScaler,
    model: SvmModel,
    num_training_examples: usize,
}

impl<F: FactorSet> FactorSetPredictor<F> {
    /// Trains on a scenario's mined rescue ground truth, computing each
    /// example's features through `factor_set`.
    ///
    /// # Panics
    ///
    /// Panics if the scenario yields no positive or no negative examples.
    pub fn train_on(scenario: &Scenario, factor_set: F, config: &FactorSetPredictorConfig) -> Self {
        let rescues = mine_rescues(scenario);
        let examples = mobirescue_mobility::rescue::training_examples(
            &scenario.generated.dataset,
            &scenario.disaster,
            &rescues,
        );
        let positives: Vec<_> = examples.iter().filter(|e| e.needs_rescue).collect();
        let negatives: Vec<_> = examples.iter().filter(|e| !e.needs_rescue).collect();
        assert!(!positives.is_empty(), "no positive training examples");
        assert!(!negatives.is_empty(), "no negative training examples");
        let per_class = (config.max_examples / 2).max(1);
        let take = |v: &[&mobirescue_mobility::rescue::LabeledExample], n: usize| {
            let n = v.len().min(n);
            let step = (v.len() as f64 / n as f64).max(1.0);
            (0..n)
                .map(|i| *v[((i as f64 * step) as usize).min(v.len() - 1)])
                .collect::<Vec<_>>()
        };
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for e in take(&positives, per_class) {
            let hour = (e.minute / 60).min(scenario.disaster.total_hours() - 1);
            rows.push(factor_set.compute(&scenario.disaster, e.position, hour));
            labels.push(1.0);
        }
        for e in take(&negatives, per_class * 2) {
            let hour = (e.minute / 60).min(scenario.disaster.total_hours() - 1);
            rows.push(factor_set.compute(&scenario.disaster, e.position, hour));
            labels.push(-1.0);
        }
        let scaler = StandardScaler::fit(&rows);
        let scaled = scaler.transform_all(&rows);
        let model = train(&scaled, &labels, config.kernel, &config.smo);
        Self {
            factor_set,
            scaler,
            model,
            num_training_examples: rows.len(),
        }
    }

    /// The factor set in use.
    pub fn factor_set(&self) -> &F {
        &self.factor_set
    }

    /// Number of training examples used.
    pub fn num_training_examples(&self) -> usize {
        self.num_training_examples
    }

    /// Raw decision value for a person at `position` during `hour`.
    pub fn decision_value(
        &self,
        scenario: &Scenario,
        position: mobirescue_roadnet::geo::GeoPoint,
        hour: u32,
    ) -> f64 {
        let features = self.factor_set.compute(&scenario.disaster, position, hour);
        self.model
            .decision_function(&self.scaler.transform(&features))
    }

    /// Equation 1 over the generic factor set.
    pub fn predict(
        &self,
        scenario: &Scenario,
        position: mobirescue_roadnet::geo::GeoPoint,
        hour: u32,
    ) -> bool {
        self.decision_value(scenario, position, hour) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use mobirescue_disaster::factors::{EarthquakeFactors, HurricaneFactors};

    #[test]
    fn generic_predictor_matches_hurricane_factors() {
        let scenario = ScenarioConfig::small().florence().build(41);
        let p = FactorSetPredictor::train_on(
            &scenario,
            HurricaneFactors,
            &FactorSetPredictorConfig::default(),
        );
        assert!(p.num_training_examples() > 10);
        // Ranking property: trapped positions score above calm-day ones.
        let rescues = mine_rescues(&scenario);
        let mut trapped = 0.0;
        for r in &rescues {
            let hour = (r.request_minute / 60).min(scenario.disaster.total_hours() - 1);
            trapped += p.decision_value(&scenario, r.request_position, hour);
        }
        trapped /= rescues.len() as f64;
        let calm = p.decision_value(&scenario, scenario.city.center, 24);
        assert!(trapped > calm, "trapped {trapped:.3} vs calm {calm:.3}");
    }

    #[test]
    fn earthquake_factor_set_trains_end_to_end() {
        // The flood ground truth is not earthquake-shaped, so this only
        // checks the extension path runs: train, scale, predict.
        let scenario = ScenarioConfig::small().florence().build(41);
        let p = FactorSetPredictor::train_on(
            &scenario,
            EarthquakeFactors,
            &FactorSetPredictorConfig::default(),
        );
        assert_eq!(p.factor_set().dim(), 3);
        let _ = p.predict(&scenario, scenario.city.center, 300);
    }
}
