//! The paper's comparison dispatchers (Section V-A).
//!
//! *Schedule* \[5\] dispatches on demand: every round it solves an integer
//! program (an assignment, solved exactly here) matching teams to the
//! requests that have already appeared, minimizing total driving delay. It
//! neither predicts future requests nor reacts to the flood-damaged
//! network's real-time state beyond reachability, and the program takes
//! ~300 s to solve — both penalized by the paper's metrics.
//!
//! *Rescue* \[8\] additionally predicts demand with a time-series model
//! (weighted same-hour average of previous days) and assigns teams to the
//! predicted positions, again by integer programming with ~300 s latency.
//!
//! Both keep their whole fleet deployed (unassigned teams hold spread-out
//! patrol posts), which is why their serving-team count stays constant in
//! Figure 14 while MobiRescue's tracks demand.

use crate::timeseries::TimeSeriesPredictor;
use mobirescue_roadnet::graph::{LandmarkId, SegmentId};
use mobirescue_roadnet::pool;
use mobirescue_sim::dispatcher::{DispatchState, Dispatcher};
use mobirescue_sim::types::{DispatchPlan, Order, TeamView};
use mobirescue_solver::hungarian::{min_cost_assignment, CostMatrix, FORBIDDEN};

/// Modeled IP solve latency: ~300 s, growing with demand (the paper notes
/// "the more requests, the more complex").
fn ip_latency_s(num_targets: usize) -> f64 {
    (260.0 + 1.5 * num_targets as f64).min(380.0)
}

/// Deterministic spread-out patrol post for a team: the paper's baselines
/// keep every vehicle deployed at a standby position covering the city,
/// re-deployed every period (`round` rotates the posts so the fleet keeps
/// cruising — Figure 14's constant serving count).
fn patrol_post(team_index: usize, round: usize, state: &DispatchState<'_>) -> SegmentId {
    let n = state.net.num_segments();
    // Golden-ratio stride spreads posts over the segment index space.
    SegmentId((((team_index + round * 13) as u64 * 2_654_435_761) % n as u64) as u32)
}

/// Teams eligible for new orders this round.
fn free_teams<'v>(state: &'v DispatchState<'_>) -> Vec<&'v TeamView> {
    state
        .teams
        .iter()
        .filter(|t| !t.delivering && t.onboard == 0)
        .collect()
}

/// Builds the team × target cost matrix (driving time to each target
/// segment's tail landmark) and returns the optimal assignment as
/// `target index per team-row`. `damage_aware` selects whether the costs
/// respect the flood-damaged network (G̃) or the pre-disaster one —
/// *Schedule* "does not consider the real-time road network connection
/// status under flooding disaster condition" (Section V-C2), so its teams
/// are assigned as if every road were intact and discover the blockages en
/// route.
fn assign(
    state: &DispatchState<'_>,
    teams: &[&TeamView],
    targets: &[(SegmentId, f64)],
    damage_aware: bool,
) -> Vec<Option<usize>> {
    if teams.is_empty() || targets.is_empty() {
        return vec![None; teams.len()];
    }
    // One SSSP per distinct team location, fanned across cores and shared
    // through the epoch cache — previously every team ran its own full
    // Dijkstra per round, and damage-unaware rounds kept re-deriving the
    // free-flow tree that never changes.
    if damage_aware {
        state.prewarm_team_routes(teams);
    } else {
        let sources: Vec<LandmarkId> = teams.iter().map(|t| t.location).collect();
        state
            .planner
            .prewarm_free_flow(&sources, pool::available_threads());
    }
    let mut cost = CostMatrix::new(teams.len(), targets.len(), FORBIDDEN);
    for (r, team) in teams.iter().enumerate() {
        let sp = if damage_aware {
            state.planner.paths_from(state.condition, team.location)
        } else {
            state.planner.free_flow_paths_from(team.location)
        };
        for (c, &(seg, penalty)) in targets.iter().enumerate() {
            let to = state.net.segment(seg).from;
            if let Some(t) = sp.travel_time_s(to) {
                cost.set(r, c, t + penalty);
            }
        }
    }
    min_cost_assignment(&cost).row_to_col
}

/// Applies assignment + patrol-post fallback: every free team gets an
/// order, so the deployed fleet stays constant.
fn plan_with_patrol(
    state: &DispatchState<'_>,
    teams: &[&TeamView],
    targets: &[(SegmentId, f64)],
    damage_aware: bool,
    round: usize,
) -> DispatchPlan {
    let mut plan = DispatchPlan::none(state.teams.len());
    let assignment = assign(state, teams, targets, damage_aware);
    for (row, team) in teams.iter().enumerate() {
        let order = match assignment.get(row).copied().flatten() {
            Some(col) => Order::GoToSegment(targets[col].0),
            None => Order::GoToSegment(patrol_post(team.id.index(), round, state)),
        };
        plan.orders[team.id.index()] = Some(order);
    }
    plan
}

/// The *Schedule* baseline: reactive integer-programming dispatch.
#[derive(Debug, Clone, Default)]
pub struct ScheduleDispatcher {
    round: usize,
}

impl Dispatcher for ScheduleDispatcher {
    fn name(&self) -> &str {
        "Schedule"
    }

    fn compute_latency_s(&self, state: &DispatchState<'_>) -> f64 {
        ip_latency_s(state.waiting.len())
    }

    fn dispatch(&mut self, state: &DispatchState<'_>) -> DispatchPlan {
        self.round += 1;
        let teams = free_teams(state);
        let targets: Vec<(SegmentId, f64)> =
            state.waiting.iter().map(|r| (r.segment, 0.0)).collect();
        plan_with_patrol(state, &teams, &targets, false, self.round)
    }
}

/// The *Rescue* baseline: time-series prediction + integer-programming
/// dispatch.
#[derive(Debug)]
pub struct RescueDispatcher {
    predictor: TimeSeriesPredictor,
    round: usize,
}

impl RescueDispatcher {
    /// Creates the dispatcher around a fitted time-series predictor.
    pub fn new(predictor: TimeSeriesPredictor) -> Self {
        Self {
            predictor,
            round: 0,
        }
    }

    /// The underlying predictor.
    pub fn predictor(&self) -> &TimeSeriesPredictor {
        &self.predictor
    }
}

impl Dispatcher for RescueDispatcher {
    fn name(&self) -> &str {
        "Rescue"
    }

    fn compute_latency_s(&self, state: &DispatchState<'_>) -> f64 {
        // Its program covers predicted positions too, so it is never
        // cheaper than Schedule's.
        let predicted: f64 = self.predictor.per_segment_at(state.hour % 24).iter().sum();
        ip_latency_s(state.waiting.len() + predicted.round() as usize) + 45.0
    }

    fn dispatch(&mut self, state: &DispatchState<'_>) -> DispatchPlan {
        self.round += 1;
        let teams = free_teams(state);
        // Targets: actual waiting requests (priority: no cost penalty),
        // then predicted demand slots — penalized so a team is diverted to
        // a *potential* request only when no appeared request needs it.
        let mut targets: Vec<(SegmentId, f64)> =
            state.waiting.iter().map(|r| (r.segment, 0.0)).collect();
        let predicted = self.predictor.per_segment_at(state.hour % 24);
        let mut slots: Vec<(f64, SegmentId)> = predicted
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0.05)
            .map(|(i, &d)| (d, SegmentId(i as u32)))
            .collect();
        slots.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("demand is never NaN"));
        for (d, seg) in slots {
            for _ in 0..(d.round().max(1.0) as usize) {
                if targets.len() >= state.teams.len() * 2 {
                    break;
                }
                targets.push((seg, 900.0));
            }
        }
        plan_with_patrol(state, &teams, &targets, true, self.round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::mine_rescues;
    use crate::scenario::ScenarioConfig;
    use mobirescue_mobility::map_match::MapMatcher;
    use mobirescue_sim::types::{RequestSpec, SimConfig};

    #[test]
    fn schedule_serves_requests_with_high_latency() {
        let scenario = ScenarioConfig::small().florence().build(51);
        let requests: Vec<RequestSpec> = (0..12)
            .map(|i| RequestSpec {
                appear_s: i * 200,
                segment: SegmentId(i * 17),
            })
            .collect();
        let cfg = SimConfig::small(24);
        let outcome = mobirescue_sim::run(
            &scenario.city,
            &scenario.conditions,
            &requests,
            &mut ScheduleDispatcher::default(),
            &cfg,
        );
        assert_eq!(outcome.dispatcher, "Schedule");
        assert!(
            outcome.total_served() > 6,
            "served {}",
            outcome.total_served()
        );
        // Latency floor of ~260 s: no rescue can be faster than that after
        // its request appears.
        let min_timeliness = outcome
            .requests
            .iter()
            .filter_map(|r| r.timeliness_s())
            .min()
            .expect("some request served");
        assert!(
            min_timeliness >= 200,
            "IP latency not reflected: {min_timeliness}"
        );
    }

    #[test]
    fn schedule_keeps_the_fleet_deployed() {
        let scenario = ScenarioConfig::small().florence().build(52);
        let requests = vec![RequestSpec {
            appear_s: 600,
            segment: SegmentId(5),
        }];
        let cfg = SimConfig::small(24);
        let outcome = mobirescue_sim::run(
            &scenario.city,
            &scenario.conditions,
            &requests,
            &mut ScheduleDispatcher::default(),
            &cfg,
        );
        // After the first applied plan every team is in the field; counts
        // at later ticks equal the full fleet.
        let late: Vec<usize> = outcome
            .serving_teams_per_slot()
            .iter()
            .filter(|(t, _)| *t > 1_200)
            .map(|(_, n)| *n)
            .collect();
        assert!(!late.is_empty());
        let avg = late.iter().sum::<usize>() as f64 / late.len() as f64;
        assert!(
            avg > cfg.num_teams as f64 * 0.8,
            "fleet not kept deployed: avg serving {avg}"
        );
    }

    #[test]
    fn rescue_uses_history_and_serves() {
        let scenario = ScenarioConfig::small().florence().build(53);
        let matcher = MapMatcher::new(&scenario.city.network);
        let rescues = mine_rescues(&scenario);
        let day = scenario.hurricane().timeline.disaster_end_day;
        let ts = TimeSeriesPredictor::fit(&scenario.city.network, &matcher, &rescues, day, 3);
        let mut dispatcher = RescueDispatcher::new(ts);
        let requests: Vec<RequestSpec> = (0..10)
            .map(|i| RequestSpec {
                appear_s: i * 300,
                segment: SegmentId(i * 23),
            })
            .collect();
        let cfg = SimConfig::small(day * 24);
        let outcome = mobirescue_sim::run(
            &scenario.city,
            &scenario.conditions,
            &requests,
            &mut dispatcher,
            &cfg,
        );
        assert_eq!(outcome.dispatcher, "Rescue");
        assert!(outcome.total_served() > 0);
    }

    #[test]
    fn latency_model_grows_with_demand_and_caps() {
        assert!(ip_latency_s(0) >= 260.0);
        assert!(ip_latency_s(50) > ip_latency_s(5));
        assert_eq!(ip_latency_s(10_000), 380.0);
    }
}
