//! The SVM-based rescue-request predictor (Section IV-B).
//!
//! Trains Equation 1's classifier `f(p_q, h_q)` on the historical rescue
//! ground truth mined from a training scenario (Hurricane Michael in the
//! paper), then predicts the distribution of potential rescue requests
//! `ñ_e` per road segment (Equation 2) for the evaluation scenario.

use crate::scenario::Scenario;
use mobirescue_disaster::factors::FactorVector;
use mobirescue_mobility::map_match::MapMatcher;
use mobirescue_mobility::person::PersonId;
use mobirescue_mobility::rescue::{
    detect_deliveries, label_rescues, training_examples, LabeledExample, RescueRecord,
    DEFAULT_HOSPITAL_RADIUS_M, DEFAULT_MIN_STAY_MINUTES,
};
use mobirescue_roadnet::geo::GeoPoint;
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_svm::{train, ConfusionMatrix, Kernel, SmoConfig, StandardScaler, SvmModel};

/// Predictor hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorConfig {
    /// SVM kernel (RBF by default, per the paper's non-linearity argument).
    pub kernel: Kernel,
    /// SMO trainer settings.
    pub smo: SmoConfig,
    /// Cap on training examples (SMO is O(n²) in memory); the set is
    /// class-balanced before capping.
    pub max_examples: usize,
    /// β² of the F-score the decision threshold is calibrated against
    /// (β² < 1 weighs precision over recall; dispatching to false
    /// positives wastes rescue teams).
    pub calibration_beta2: f64,
    /// Floor on training recall: the calibrated threshold may not push
    /// training-set recall below this (a predictor that predicts no demand
    /// is useless to the dispatcher).
    pub min_recall: f64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            kernel: Kernel::Rbf { gamma: 0.5 },
            smo: SmoConfig {
                c: 2.0,
                ..SmoConfig::default()
            },
            max_examples: 1_200,
            calibration_beta2: 0.25,
            min_recall: 0.5,
        }
    }
}

/// Runs the Section III-B2 ground-truth pipeline on a scenario: detect
/// hospital deliveries in the GPS data, keep those whose previous position
/// was flooded.
pub fn mine_rescues(scenario: &Scenario) -> Vec<RescueRecord> {
    let hospitals: Vec<GeoPoint> = scenario
        .city
        .hospitals
        .iter()
        .map(|&h| scenario.city.network.landmark(h).position)
        .collect();
    let trajectories = scenario.generated.dataset.trajectories();
    let deliveries = detect_deliveries(
        &trajectories,
        &hospitals,
        DEFAULT_HOSPITAL_RADIUS_M,
        DEFAULT_MIN_STAY_MINUTES,
    );
    label_rescues(&deliveries, &scenario.disaster)
}

/// The trained rescue-request predictor.
#[derive(Debug, Clone)]
pub struct RequestPredictor {
    scaler: StandardScaler,
    model: SvmModel,
    /// Calibrated decision threshold: predict positive when the SVM
    /// decision value exceeds it (chosen to maximize F₀.₅ on the training
    /// set — rescue dispatch wants high precision, since false positives
    /// send teams into empty streets).
    threshold: f64,
    trained_on: String,
    num_training_examples: usize,
}

impl RequestPredictor {
    /// Trains on a scenario's mined ground truth (the paper trains on
    /// Hurricane Michael).
    ///
    /// # Panics
    ///
    /// Panics if the scenario yields no positive or no negative examples.
    pub fn train_on(scenario: &Scenario, config: &PredictorConfig) -> Self {
        let rescues = mine_rescues(scenario);
        let examples = training_examples(&scenario.generated.dataset, &scenario.disaster, &rescues);
        Self::train_on_examples(&examples, config, &scenario.hurricane().name)
    }

    /// Trains directly on labelled examples.
    ///
    /// # Panics
    ///
    /// Panics if either class is absent.
    pub fn train_on_examples(
        examples: &[LabeledExample],
        config: &PredictorConfig,
        source: &str,
    ) -> Self {
        let positives: Vec<&LabeledExample> = examples.iter().filter(|e| e.needs_rescue).collect();
        let negatives: Vec<&LabeledExample> = examples.iter().filter(|e| !e.needs_rescue).collect();
        assert!(!positives.is_empty(), "no positive training examples");
        assert!(!negatives.is_empty(), "no negative training examples");
        // Class-balance (at most 2 negatives per positive) and cap.
        let per_class = (config.max_examples / 2).max(1);
        let pos_take = positives.len().min(per_class);
        let neg_take = negatives
            .len()
            .min((pos_take * 2).min(config.max_examples - pos_take));
        let take_evenly = |v: &[&LabeledExample], n: usize| -> Vec<LabeledExample> {
            let step = (v.len() as f64 / n as f64).max(1.0);
            (0..n)
                .map(|i| *v[((i as f64 * step) as usize).min(v.len() - 1)])
                .collect()
        };
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for e in take_evenly(&positives, pos_take) {
            rows.push(e.factors.as_array().to_vec());
            labels.push(1.0);
        }
        for e in take_evenly(&negatives, neg_take) {
            rows.push(e.factors.as_array().to_vec());
            labels.push(-1.0);
        }
        let scaler = StandardScaler::fit(&rows);
        let scaled = scaler.transform_all(&rows);
        let model = train(&scaled, &labels, config.kernel, &config.smo);
        // Calibrate the decision threshold on the *full* example set (not
        // just the balanced subsample) for maximal F₀.₅.
        let all_rows: Vec<Vec<f64>> = examples
            .iter()
            .map(|e| scaler.transform(&e.factors.as_array()))
            .collect();
        let decisions: Vec<f64> = all_rows
            .iter()
            .map(|r| model.decision_function(r))
            .collect();
        let labels: Vec<bool> = examples.iter().map(|e| e.needs_rescue).collect();
        let mut threshold = calibrate_threshold(&decisions, &labels, config.calibration_beta2);
        // Never let precision-tuning push training recall below the
        // configured floor: a dispatcher that predicts no demand is
        // useless, and flood factors drift over the day (rain decays while
        // water lingers).
        let mut pos_decisions: Vec<f64> = decisions
            .iter()
            .zip(&labels)
            .filter(|(_, &y)| y)
            .map(|(&d, _)| d)
            .collect();
        pos_decisions.sort_by(|a, b| a.partial_cmp(b).expect("decisions are never NaN"));
        if !pos_decisions.is_empty() {
            let q = (1.0 - config.min_recall.clamp(0.0, 1.0)).min(0.999);
            let idx = ((pos_decisions.len() as f64 * q) as usize).min(pos_decisions.len() - 1);
            threshold = threshold.min(pos_decisions[idx] - 1e-9);
        }
        Self {
            scaler,
            model,
            threshold,
            trained_on: source.to_owned(),
            num_training_examples: rows.len(),
        }
    }

    /// Name of the disaster the predictor was trained on.
    pub fn trained_on(&self) -> &str {
        &self.trained_on
    }

    /// Number of examples used in training (after balancing/capping).
    pub fn num_training_examples(&self) -> usize {
        self.num_training_examples
    }

    /// Serializes the trained predictor (scaler + SVM + threshold) to a
    /// plain-text blob, so a model trained on one disaster can be shipped
    /// to the next deployment.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "predictor {} {} {:?}\n",
            self.trained_on.replace(' ', "_"),
            self.num_training_examples,
            self.threshold
        );
        let fmt = |v: &[f64]| {
            v.iter()
                .map(|x| format!("{x:?}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        out.push_str(&format!("means {}\n", fmt(self.scaler.means())));
        out.push_str(&format!("stds {}\n", fmt(self.scaler.stds())));
        out.push_str(&mobirescue_svm::persist::model_to_text(&self.model));
        out
    }

    /// Parses a predictor produced by [`RequestPredictor::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on any malformed section.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty input")?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("predictor") {
            return Err("missing predictor header".into());
        }
        let trained_on = parts.next().ok_or("missing source")?.replace('_', " ");
        let num_training_examples = parts
            .next()
            .and_then(|n| n.parse().ok())
            .ok_or("bad example count")?;
        let threshold: f64 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or("bad threshold")?;
        let parse_vec = |line: Option<&str>, prefix: &str| -> Result<Vec<f64>, String> {
            line.and_then(|l| l.strip_prefix(prefix))
                .ok_or_else(|| format!("missing {prefix} line"))?
                .split_whitespace()
                .map(|x| x.parse().map_err(|_| format!("bad number in {prefix}")))
                .collect()
        };
        let means = parse_vec(lines.next(), "means ")?;
        let stds = parse_vec(lines.next(), "stds ")?;
        let rest: String = lines.collect::<Vec<_>>().join("\n");
        let model = mobirescue_svm::persist::model_from_text(&rest).map_err(|e| e.to_string())?;
        Ok(Self {
            scaler: mobirescue_svm::StandardScaler::from_parts(means, stds),
            model,
            threshold,
            trained_on,
            num_training_examples,
        })
    }

    /// Equation 1: should the person with factor vector `h` be rescued?
    pub fn predict(&self, factors: &FactorVector) -> bool {
        self.decision_value(factors) > self.threshold
    }

    /// Structural admission probe: every numeric field must be finite and
    /// the decision function must stay finite on a deterministic batch of
    /// factor vectors spanning calm weather to a severe storm.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first failure.
    pub fn probe(&self) -> Result<(), String> {
        if !self.threshold.is_finite() {
            return Err(format!("threshold is not finite ({})", self.threshold));
        }
        for (name, v) in [("means", self.scaler.means()), ("stds", self.scaler.stds())] {
            if let Some(i) = v.iter().position(|x| !x.is_finite()) {
                return Err(format!("scaler {name}[{i}] is not finite ({})", v[i]));
            }
        }
        mobirescue_svm::persist::check_finite(&self.model)?;
        let probes = [
            FactorVector::default(),
            FactorVector {
                precipitation_mm_h: 5.0,
                wind_mph: 30.0,
                altitude_m: 10.0,
            },
            FactorVector {
                precipitation_mm_h: 80.0,
                wind_mph: 150.0,
                altitude_m: 2.0,
            },
        ];
        for (i, f) in probes.iter().enumerate() {
            let d = self.decision_value(f);
            if !d.is_finite() {
                return Err(format!(
                    "probe factor vector {i} produced decision value {d}"
                ));
            }
        }
        Ok(())
    }

    /// The calibrated decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Raw SVM decision value for `h`.
    pub fn decision_value(&self, factors: &FactorVector) -> f64 {
        self.model
            .decision_function(&self.scaler.transform(&factors.as_array()))
    }

    /// Equation 2: the predicted number of potential rescue requests per
    /// road segment `ñ_e`, from everyone's latest known position at `hour`
    /// (falling back to home anchors per Section IV-C5's extension when a
    /// person has no recent ping).
    ///
    /// Inference is batched: all factor rows are standardized into one flat
    /// buffer and scored with a single [`SvmModel::decision_batch`] call,
    /// then only the positives pay for map matching. Per-row math matches
    /// the scalar [`RequestPredictor::predict`] path bit-for-bit.
    pub fn predict_distribution(
        &self,
        scenario: &Scenario,
        matcher: &MapMatcher,
        hour: u32,
    ) -> Vec<f64> {
        let net = &scenario.city.network;
        let mut out = vec![0.0; net.num_segments()];
        let positions = people_positions_at(scenario, hour);
        let dim = self.scaler.dim();
        let mut scaled = Vec::with_capacity(positions.len() * dim);
        for (_, position) in &positions {
            let factors = scenario.disaster.factors_at(*position, hour);
            self.scaler
                .transform_append(&factors.as_array(), &mut scaled);
        }
        let mut decisions = Vec::new();
        self.model.decision_batch(&scaled, dim, &mut decisions);
        for ((_, position), &d) in positions.iter().zip(&decisions) {
            if d > self.threshold {
                out[matcher.nearest_segment(net, *position).index()] += 1.0;
            }
        }
        out
    }
}

/// Picks the decision threshold maximizing the F_β score (with the given
/// β²) over labelled decision values; falls back to `0.0` for degenerate
/// inputs.
fn calibrate_threshold(decisions: &[f64], labels: &[bool], beta2: f64) -> f64 {
    debug_assert_eq!(decisions.len(), labels.len());
    let mut candidates: Vec<f64> = decisions.to_vec();
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("decisions are never NaN"));
    candidates.dedup();
    let mut best = (f64::NEG_INFINITY, 0.0);
    for window in candidates
        .windows(2)
        .map(|w| (w[0] + w[1]) / 2.0)
        .chain([0.0])
    {
        let mut tp = 0.0;
        let mut fp = 0.0;
        let mut fn_ = 0.0;
        for (&d, &y) in decisions.iter().zip(labels) {
            match (d > window, y) {
                (true, true) => tp += 1.0,
                (true, false) => fp += 1.0,
                (false, true) => fn_ += 1.0,
                (false, false) => {}
            }
        }
        let denom = (1.0 + beta2) * tp + fp + beta2 * fn_;
        let f = if denom > 0.0 {
            (1.0 + beta2) * tp / denom
        } else {
            0.0
        };
        if f > best.0 {
            best = (f, window);
        }
    }
    best.1
}

/// Everyone's latest known position at `hour`: the last ping in the
/// preceding 6 hours, else the person's home anchor (the Section IV-C5
/// fallback for unavailable real-time GPS).
pub fn people_positions_at(scenario: &Scenario, hour: u32) -> Vec<(PersonId, GeoPoint)> {
    let dataset = &scenario.generated.dataset;
    let cutoff = hour * 60 + 59;
    let floor = cutoff.saturating_sub(6 * 60);
    let mut latest: Vec<Option<GeoPoint>> = vec![None; dataset.num_people()];
    // Pings are sorted by (person, minute); a linear scan keeps the last
    // ping in the window per person.
    for ping in &dataset.pings {
        if ping.minute <= cutoff && ping.minute >= floor {
            latest[ping.person.index()] = Some(ping.position);
        }
    }
    dataset
        .people
        .iter()
        .map(|p| (p.id, latest[p.id.index()].unwrap_or(p.home)))
        .collect()
}

/// Per-segment prediction evaluation (Figures 15–16).
#[derive(Debug, Clone)]
pub struct SegmentEval {
    /// Confusion matrix per segment with at least one evaluated person.
    pub per_segment: Vec<(SegmentId, ConfusionMatrix)>,
    /// Pooled confusion matrix.
    pub overall: ConfusionMatrix,
}

impl SegmentEval {
    /// Per-segment accuracies (the Figure 15 CDF samples), over
    /// *informative* segments — those with at least one actual or one
    /// predicted rescue request. (Counting the vast majority of segments
    /// where nothing happens and nothing is predicted would pin every
    /// method's accuracy at 1.0; the paper's Figure 15 spreads well below
    /// that.)
    pub fn accuracies(&self) -> Vec<f64> {
        self.per_segment
            .iter()
            .filter(|(_, m)| m.tp + m.fn_ > 0 || m.tp + m.fp > 0)
            .filter_map(|(_, m)| m.accuracy())
            .collect()
    }

    /// Per-segment precisions (the Figure 16 CDF samples). Segments with
    /// actual requests but no predicted positives count as precision 0 —
    /// the predictor missed them entirely; segments without actual or
    /// predicted requests are skipped.
    pub fn precisions(&self) -> Vec<f64> {
        self.per_segment
            .iter()
            .filter(|(_, m)| m.tp + m.fn_ > 0 || m.tp + m.fp > 0)
            .map(|(_, m)| m.precision().unwrap_or(0.0))
            .collect()
    }

    /// Mean per-segment accuracy over informative segments.
    pub fn mean_accuracy(&self) -> f64 {
        mobirescue_mobility::stats::mean(&self.accuracies())
    }

    /// Mean per-segment precision over informative segments.
    pub fn mean_precision(&self) -> f64 {
        mobirescue_mobility::stats::mean(&self.precisions())
    }
}

/// Evaluates a person-level rescue prediction on one day of a scenario,
/// grouped per road segment: for every person, `predict(position, hour)` is
/// compared against whether the person actually issued a rescue request
/// that day (per the mined ground truth).
pub fn evaluate_per_segment(
    scenario: &Scenario,
    matcher: &MapMatcher,
    rescues: &[RescueRecord],
    day: u32,
    mut predict: impl FnMut(GeoPoint, u32) -> bool,
) -> SegmentEval {
    let net = &scenario.city.network;
    // Actually-rescued people on the target day, with their request info.
    // People rescued on *earlier* days are out of the population (already
    // in a hospital or shelter), so they are excluded.
    let mut actual: Vec<Option<(GeoPoint, u32)>> =
        vec![None; scenario.generated.dataset.num_people()];
    let mut already_rescued = vec![false; scenario.generated.dataset.num_people()];
    for r in rescues {
        if r.request_day() == day {
            actual[r.person.index()] = Some((r.request_position, r.request_minute / 60));
        } else if r.request_day() < day {
            already_rescued[r.person.index()] = true;
        }
    }
    let midday = day * 24 + 12;
    let positions = people_positions_at(scenario, midday);
    let mut per_segment: std::collections::HashMap<SegmentId, ConfusionMatrix> =
        std::collections::HashMap::new();
    let mut overall = ConfusionMatrix::default();
    for (person, default_pos) in positions {
        if already_rescued[person.index()] {
            continue;
        }
        // Rescued people are evaluated at their trapped position/time;
        // everyone else at their midday position.
        let (pos, hour, truth) = match actual[person.index()] {
            Some((p, h)) => (p, h, true),
            None => (default_pos, midday, false),
        };
        let pred = predict(pos, hour);
        let seg = matcher.nearest_segment(net, pos);
        per_segment.entry(seg).or_default().record(pred, truth);
        overall.record(pred, truth);
    }
    let mut per_segment: Vec<(SegmentId, ConfusionMatrix)> = per_segment.into_iter().collect();
    per_segment.sort_by_key(|(s, _)| *s);
    SegmentEval {
        per_segment,
        overall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn train_small() -> (Scenario, RequestPredictor) {
        let scenario = ScenarioConfig::small().michael().build(41);
        let predictor = RequestPredictor::train_on(&scenario, &PredictorConfig::default());
        (scenario, predictor)
    }

    #[test]
    fn trains_and_separates_obvious_cases() {
        let (scenario, predictor) = train_small();
        assert!(predictor.num_training_examples() > 20);
        // A trapped person's actual factors vs the same place on a calm day.
        let rescues = mine_rescues(&scenario);
        let r = rescues.first().expect("training scenario has rescues");
        let hour = (r.request_minute / 60).min(scenario.disaster.total_hours() - 1);
        let danger = scenario.disaster.factors_at(r.request_position, hour);
        let safe = scenario.disaster.factors_at(r.request_position, 24);
        assert!(
            predictor.predict(&danger),
            "trapped-person factors must trigger rescue"
        );
        assert!(
            !predictor.predict(&safe),
            "the same spot on a calm day must not"
        );
        assert!(predictor.decision_value(&danger) > predictor.decision_value(&safe));
        let _ = FactorVector::default();
    }

    #[test]
    fn generalizes_across_storms() {
        // Train on Michael, evaluate on Florence — the paper's transfer.
        let michael = ScenarioConfig::small().michael().build(42);
        let florence = ScenarioConfig::small().florence().build(42);
        let predictor = RequestPredictor::train_on(&michael, &PredictorConfig::default());
        let rescues = mine_rescues(&florence);
        assert!(!rescues.is_empty());
        // With only a handful of Michael positives at test scale the
        // calibrated threshold is noisy, so check the transfer at the
        // ranking level: Florence's trapped positions must score far above
        // the same city on a calm day.
        let mut trapped_scores = Vec::new();
        for r in &rescues {
            let hour = (r.request_minute / 60).min(florence.disaster.total_hours() - 1);
            trapped_scores.push(
                predictor.decision_value(&florence.disaster.factors_at(r.request_position, hour)),
            );
        }
        let mut calm_scores = Vec::new();
        for (_, pos) in people_positions_at(&florence, 24) {
            calm_scores.push(predictor.decision_value(&florence.disaster.factors_at(pos, 24)));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // Florence's stronger factors sit partly outside the Michael-trained
        // RBF's support, so scores shrink toward the bias — but the ranking
        // must survive the transfer.
        assert!(
            mean(&trapped_scores) > mean(&calm_scores) + 0.2,
            "trapped {:.3} vs calm {:.3}",
            mean(&trapped_scores),
            mean(&calm_scores)
        );
        let above = trapped_scores
            .iter()
            .filter(|&&s| s > mean(&calm_scores))
            .count();
        assert!(
            above * 10 >= trapped_scores.len() * 7,
            "{above}/{} rank above calm",
            trapped_scores.len()
        );
    }

    #[test]
    fn distribution_concentrates_during_disaster() {
        // Train and evaluate on the same (stronger) Florence storm — this
        // test is about the distribution, not cross-storm transfer.
        let scenario = ScenarioConfig::small().florence().build(41);
        let predictor = RequestPredictor::train_on(&scenario, &PredictorConfig::default());
        let matcher = MapMatcher::new(&scenario.city.network);
        let calm = predictor.predict_distribution(&scenario, &matcher, 24);
        // Evaluate at the rain peak — when factors scream danger and new
        // trappings actually happen (12 h later the rain has passed and
        // the remaining trapped population has already requested help).
        let peak_hour = scenario.hurricane().timeline.peak_hour();
        let peak = predictor.predict_distribution(&scenario, &matcher, peak_hour);
        let calm_total: f64 = calm.iter().sum();
        let peak_total: f64 = peak.iter().sum();
        assert!(
            peak_total > calm_total,
            "predicted demand should spike during the storm: calm {calm_total}, peak {peak_total}"
        );
    }

    #[test]
    fn batched_distribution_matches_scalar_predictions() {
        let (scenario, predictor) = train_small();
        let matcher = MapMatcher::new(&scenario.city.network);
        let hour = scenario.hurricane().timeline.peak_hour();
        let batched = predictor.predict_distribution(&scenario, &matcher, hour);
        let mut scalar = vec![0.0; scenario.city.network.num_segments()];
        for (_, pos) in people_positions_at(&scenario, hour) {
            let factors = scenario.disaster.factors_at(pos, hour);
            if predictor.predict(&factors) {
                scalar[matcher.nearest_segment(&scenario.city.network, pos).index()] += 1.0;
            }
        }
        assert_eq!(batched, scalar, "batched SVM path must be bit-identical");
    }

    #[test]
    fn predictor_round_trips_through_text() {
        let (scenario, predictor) = train_small();
        let text = predictor.to_text();
        let back = RequestPredictor::from_text(&text).expect("round trip parses");
        assert_eq!(back.trained_on(), predictor.trained_on());
        assert_eq!(back.threshold(), predictor.threshold());
        assert_eq!(
            back.num_training_examples(),
            predictor.num_training_examples()
        );
        // Decisions identical at arbitrary positions/hours.
        for hour in [24u32, 300, 400] {
            let f = scenario.disaster.factors_at(scenario.city.center, hour);
            assert_eq!(back.decision_value(&f), predictor.decision_value(&f));
            assert_eq!(back.predict(&f), predictor.predict(&f));
        }
        assert!(RequestPredictor::from_text("garbage").is_err());
        assert!(RequestPredictor::from_text("").is_err());
    }

    #[test]
    fn probe_accepts_trained_and_rejects_poisoned() {
        let (_, predictor) = train_small();
        assert_eq!(predictor.probe(), Ok(()));
        // Poison the threshold through the text round trip.
        let text = predictor.to_text();
        let poisoned = text.replacen(&format!("{:?}", predictor.threshold()), "NaN", 1);
        let bad = RequestPredictor::from_text(&poisoned).expect("NaN parses numerically");
        assert!(bad.probe().unwrap_err().contains("threshold"));
    }

    #[test]
    fn positions_fall_back_to_home() {
        let (scenario, _) = train_small();
        let positions = people_positions_at(&scenario, 2);
        assert_eq!(positions.len(), scenario.generated.dataset.num_people());
    }

    #[test]
    fn segment_eval_produces_confusions() {
        let (scenario, predictor) = train_small();
        let matcher = MapMatcher::new(&scenario.city.network);
        let rescues = mine_rescues(&scenario);
        let day = scenario.hurricane().timeline.disaster_start_day + 1;
        let eval = evaluate_per_segment(&scenario, &matcher, &rescues, day, |pos, hour| {
            predictor.predict(&scenario.disaster.factors_at(pos, hour))
        });
        let population = scenario.generated.dataset.num_people();
        assert!(
            eval.overall.total() <= population && eval.overall.total() > population / 2,
            "evaluated {} of {population} (previously-rescued people are excluded)",
            eval.overall.total()
        );
        assert!(!eval.per_segment.is_empty());
        let acc = eval.accuracies();
        assert!(acc.iter().all(|&a| (0.0..=1.0).contains(&a)));
    }
}
