//! The Section-V experiment harness: train on Michael, evaluate on
//! Florence, compare MobiRescue against *Schedule* and *Rescue*.
//!
//! One call to [`run_comparison`] reproduces the data behind Figures 9–16:
//! it builds both scenarios over the same city, mines the rescue ground
//! truth, trains the SVM predictor and the RL agent on Michael, fits the
//! time-series baseline on Florence's request history, runs the three
//! dispatchers through the identical 24-hour request schedule, and
//! evaluates both predictors per road segment.

use crate::baselines::{RescueDispatcher, ScheduleDispatcher};
use crate::predictor::{
    evaluate_per_segment, mine_rescues, PredictorConfig, RequestPredictor, SegmentEval,
};
use crate::rl_dispatch::{MobiRescueDispatcher, RlDispatchConfig};
use crate::scenario::{Scenario, ScenarioConfig};
use crate::timeseries::TimeSeriesPredictor;
use crate::training::{busiest_request_day, requests_on_day, train_offline, TrainingReport};
use mobirescue_mobility::map_match::MapMatcher;
use mobirescue_sim::engine::SimOutcome;
use mobirescue_sim::types::SimConfig;

/// Configuration of a full comparison experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Scenario scale (city + population); the harness derives the Florence
    /// evaluation scenario and the Michael training scenario from it.
    pub scenario: ScenarioConfig,
    /// Build seed (shared by both scenarios — same city).
    pub seed: u64,
    /// Simulation settings for the evaluation day (start hour is
    /// overwritten with the experiment day).
    pub sim: SimConfig,
    /// RL dispatcher settings.
    pub rl: RlDispatchConfig,
    /// SVM predictor settings.
    pub predictor: PredictorConfig,
    /// Offline training episodes on Michael.
    pub train_episodes: usize,
    /// History days for the *Rescue* baseline's time-series predictor.
    pub lookback_days: u32,
}

impl ExperimentConfig {
    /// Small test-scale experiment: full 24-hour evaluation day, 8 teams.
    pub fn small(seed: u64) -> Self {
        let mut sim = SimConfig::paper(0);
        sim.num_teams = 8;
        Self {
            scenario: ScenarioConfig::small(),
            seed,
            sim,
            rl: RlDispatchConfig {
                eps_decay_steps: 4_000,
                ..Default::default()
            },
            predictor: PredictorConfig::default(),
            train_episodes: 6,
            lookback_days: 3,
        }
    }

    /// Mid-scale experiment for benchmarks (minutes, not hours).
    pub fn medium(seed: u64) -> Self {
        let mut sim = SimConfig::paper(0);
        sim.num_teams = 60;
        Self {
            scenario: ScenarioConfig::medium(),
            seed,
            sim,
            rl: RlDispatchConfig {
                zone_k: 8,
                eps_decay_steps: 40_000,
                ..Default::default()
            },
            predictor: PredictorConfig::default(),
            train_episodes: 6,
            lookback_days: 3,
        }
    }

    /// Paper-scale experiment (8,590 people, 100 teams, 24 h).
    pub fn paper(seed: u64) -> Self {
        Self {
            scenario: ScenarioConfig::charlotte_like(),
            seed,
            sim: SimConfig::paper(0),
            rl: RlDispatchConfig {
                zone_k: 12,
                eps_decay_steps: 100_000,
                ..Default::default()
            },
            predictor: PredictorConfig::default(),
            train_episodes: 8,
            lookback_days: 3,
        }
    }
}

/// One method's simulation result.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method name ("MobiRescue", "Rescue", "Schedule").
    pub name: String,
    /// The full simulation outcome (feeds Figures 9–14).
    pub outcome: SimOutcome,
}

/// Everything the evaluation figures need.
#[derive(Debug)]
pub struct Comparison {
    /// The evaluated day (the paper's Sep 16).
    pub experiment_day: u32,
    /// Requests injected on that day.
    pub num_requests: usize,
    /// Per-method outcomes, in order MobiRescue, Rescue, Schedule.
    pub results: Vec<MethodResult>,
    /// Per-segment SVM prediction evaluation (Figures 15–16, MobiRescue).
    pub prediction_mr: SegmentEval,
    /// Per-segment time-series evaluation (Figures 15–16, Rescue).
    pub prediction_rescue: SegmentEval,
    /// Offline training report (Michael episodes).
    pub training: TrainingReport,
    /// The evaluation scenario, for further analysis.
    pub florence: Scenario,
}

impl Comparison {
    /// The result of a named method.
    ///
    /// # Panics
    ///
    /// Panics if the method is unknown.
    pub fn method(&self, name: &str) -> &MethodResult {
        self.results
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("no method named {name}"))
    }
}

/// Runs the full train-on-Michael / evaluate-on-Florence comparison.
///
/// # Panics
///
/// Panics if either scenario produces no rescue ground truth (degenerate
/// configurations only).
pub fn run_comparison(config: &ExperimentConfig) -> Comparison {
    let michael = config.scenario.clone().michael().build(config.seed);
    let florence = config.scenario.clone().florence().build(config.seed);
    let matcher = MapMatcher::new(&florence.city.network);

    // Ground truth on the evaluation disaster.
    let florence_rescues = mine_rescues(&florence);
    let experiment_day =
        busiest_request_day(&florence_rescues).expect("Florence produced no rescues");
    let requests = requests_on_day(&florence, &matcher, &florence_rescues, experiment_day);

    // Train on Michael (Section V-B).
    let predictor = RequestPredictor::train_on(&michael, &config.predictor);
    let (policy, training) = train_offline(
        &michael,
        Some(predictor.clone()),
        config.rl.clone(),
        &config.sim,
        config.train_episodes,
    );

    let mut sim = config.sim.clone();
    sim.start_hour = experiment_day * 24;
    sim.duration_hours = sim
        .duration_hours
        .min(florence.disaster.total_hours() - sim.start_hour);

    // MobiRescue: trained agent + online continual training (IV-C4).
    let mut mr = MobiRescueDispatcher::with_policy(
        &florence,
        Some(predictor.clone()),
        config.rl.clone(),
        policy,
    );
    mr.reset_episode();
    let mr_outcome = mobirescue_sim::run(
        &florence.city,
        &florence.conditions,
        &requests,
        &mut mr,
        &sim,
    );

    // Rescue baseline: time-series over the experiment day's history.
    let lookback = config.lookback_days.min(experiment_day);
    let ts = TimeSeriesPredictor::fit(
        &florence.city.network,
        &matcher,
        &florence_rescues,
        experiment_day,
        lookback.max(1),
    );
    let ts_eval = TimeSeriesPredictor::fit(
        &florence.city.network,
        &matcher,
        &florence_rescues,
        experiment_day,
        lookback.max(1),
    );
    let mut rescue = RescueDispatcher::new(ts);
    let rescue_outcome = mobirescue_sim::run(
        &florence.city,
        &florence.conditions,
        &requests,
        &mut rescue,
        &sim,
    );

    // Schedule baseline.
    let mut schedule = ScheduleDispatcher::default();
    let schedule_outcome = mobirescue_sim::run(
        &florence.city,
        &florence.conditions,
        &requests,
        &mut schedule,
        &sim,
    );

    // Figures 15–16: per-segment prediction quality on the experiment day.
    let prediction_mr = evaluate_per_segment(
        &florence,
        &matcher,
        &florence_rescues,
        experiment_day,
        |pos, hour| predictor.predict(&florence.disaster.factors_at(pos, hour)),
    );
    let prediction_rescue = evaluate_per_segment(
        &florence,
        &matcher,
        &florence_rescues,
        experiment_day,
        |pos, hour| {
            let seg = matcher.nearest_segment(&florence.city.network, pos);
            ts_eval.predict_person(seg, hour % 24, 0.2)
        },
    );

    Comparison {
        experiment_day,
        num_requests: requests.len(),
        results: vec![
            MethodResult {
                name: "MobiRescue".into(),
                outcome: mr_outcome,
            },
            MethodResult {
                name: "Rescue".into(),
                outcome: rescue_outcome,
            },
            MethodResult {
                name: "Schedule".into(),
                outcome: schedule_outcome,
            },
        ],
        prediction_mr,
        prediction_rescue,
        training,
        florence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_comparison_runs_end_to_end() {
        let mut config = ExperimentConfig::small(71);
        config.train_episodes = 2;
        config.sim.duration_hours = 6;
        let cmp = run_comparison(&config);
        assert_eq!(cmp.results.len(), 3);
        assert!(cmp.num_requests > 0);
        for m in &cmp.results {
            assert_eq!(m.outcome.requests.len(), cmp.num_requests);
        }
        assert!(cmp.prediction_mr.overall.total() > 0);
        assert!(cmp.prediction_rescue.overall.total() > 0);
        assert_eq!(cmp.method("Schedule").name, "Schedule");
        assert_eq!(cmp.training.episodes.len(), 2);
    }
}
