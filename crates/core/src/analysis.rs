//! The Section-III dataset measurement pipeline.
//!
//! Runs the paper's analysis end-to-end on a scenario's GPS dataset: data
//! cleaning, trip inference, vehicle-flow measurement, hospital-delivery
//! detection and rescued labelling — producing the data behind Table I and
//! Figures 2–6. Everything is computed from the pings alone, so the
//! paper's observations emerge (or fail) from the pipeline rather than
//! being hard-coded.

use crate::predictor::mine_rescues;
use crate::scenario::Scenario;
use mobirescue_disaster::hurricane::HOURS_PER_DAY;
use mobirescue_mobility::cleaning::{clean, CleaningConfig, CleaningReport};
use mobirescue_mobility::flow::FlowField;
use mobirescue_mobility::map_match::MapMatcher;
use mobirescue_mobility::rescue::{
    detect_deliveries, RescueRecord, DEFAULT_HOSPITAL_RADIUS_M, DEFAULT_MIN_STAY_MINUTES,
};
use mobirescue_mobility::stats::{pearson, Cdf};
use mobirescue_mobility::trace::MobilityDataset;
use mobirescue_mobility::trips::{extract_trips, DEFAULT_TRIP_THRESHOLD_M};
use mobirescue_roadnet::geo::GeoPoint;
use mobirescue_roadnet::regions::RegionId;

/// Per-region disaster factors, as annotated in the paper's Figure 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionFactors {
    /// The region.
    pub region: RegionId,
    /// Average precipitation at the disaster peak, mm/h.
    pub precipitation_mm_h: f64,
    /// Average wind speed at the disaster peak, mph.
    pub wind_mph: f64,
    /// Average altitude, m.
    pub altitude_m: f64,
}

/// Table I: Pearson correlations between vehicle flow rate and each
/// disaster-related factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1 {
    /// Correlation with precipitation (paper: −0.897).
    pub precipitation: f64,
    /// Correlation with wind speed (paper: −0.781).
    pub wind: f64,
    /// Correlation with altitude (paper: +0.739).
    pub altitude: f64,
}

/// The full Section-III analysis output.
#[derive(Debug)]
pub struct DatasetAnalysis {
    /// Data-cleaning statistics (Figure 7, stage 1).
    pub cleaning: CleaningReport,
    /// Inferred vehicle trips.
    pub num_trips: usize,
    /// Per-segment hourly vehicle flow.
    pub flow: FlowField,
    /// All detected hospital deliveries per day (Figure 6).
    pub deliveries_per_day: Vec<usize>,
    /// Flood rescues mined from the data.
    pub rescues: Vec<RescueRecord>,
    /// Rescued people per region (Figure 4).
    pub rescued_per_region: Vec<usize>,
    /// Per-region factor annotations (Figure 1).
    pub region_factors: Vec<RegionFactors>,
}

impl DatasetAnalysis {
    /// Runs the whole pipeline on `scenario`.
    pub fn run(scenario: &Scenario) -> Self {
        let city = &scenario.city;
        let bounds = city
            .network
            .bounding_box()
            .expect("city network is non-empty")
            .expanded_m(2_000.0);
        let (kept, cleaning) = clean(
            &scenario.generated.dataset.pings,
            &CleaningConfig::for_bounds(bounds),
        );
        let cleaned = MobilityDataset {
            people: scenario.generated.dataset.people.clone(),
            pings: kept,
        };
        let matcher = MapMatcher::new(&city.network);
        let trips = extract_trips(&cleaned, &city.network, &matcher, DEFAULT_TRIP_THRESHOLD_M);
        let flow = FlowField::from_trips(&city.network, &trips, &scenario.conditions);

        // Hospital deliveries per day + rescued labelling.
        let hospitals: Vec<GeoPoint> = city
            .hospitals
            .iter()
            .map(|&h| city.network.landmark(h).position)
            .collect();
        let trajectories = cleaned.trajectories();
        let deliveries = detect_deliveries(
            &trajectories,
            &hospitals,
            DEFAULT_HOSPITAL_RADIUS_M,
            DEFAULT_MIN_STAY_MINUTES,
        );
        let total_days = (scenario.disaster.total_hours() / HOURS_PER_DAY) as usize;
        let mut deliveries_per_day = vec![0usize; total_days];
        for d in &deliveries {
            // A delivery needs an arrival *from somewhere*: people whose
            // first-ever ping already sits inside a hospital catchment
            // simply live nearby.
            if d.previous_position.is_none() {
                continue;
            }
            let day = (d.arrival_minute / (24 * 60)) as usize;
            if day < total_days {
                deliveries_per_day[day] += 1;
            }
        }
        let rescues = mine_rescues(scenario);
        let mut rescued_per_region = vec![0usize; city.regions.num_regions()];
        for r in &rescues {
            let seg = matcher.nearest_segment(&city.network, r.request_position);
            rescued_per_region[city.regions.of_segment(seg).index()] += 1;
        }

        // Figure-1 style region annotations at the disaster peak.
        let peak = scenario.hurricane().timeline.peak_hour();
        let region_factors = city
            .regions
            .region_ids()
            .map(|region| {
                let members = city.regions.landmarks_in(region);
                let n = members.len().max(1) as f64;
                let mut f = RegionFactors {
                    region,
                    precipitation_mm_h: 0.0,
                    wind_mph: 0.0,
                    altitude_m: 0.0,
                };
                for lm in members {
                    let pos = city.network.landmark(lm).position;
                    let v = scenario.disaster.factors_at(pos, peak);
                    f.precipitation_mm_h += v.precipitation_mm_h / n;
                    f.wind_mph += v.wind_mph / n;
                    f.altitude_m += v.altitude_m / n;
                }
                f
            })
            .collect();

        Self {
            cleaning,
            num_trips: trips.len(),
            flow,
            deliveries_per_day,
            rescues,
            rescued_per_region,
            region_factors,
        }
    }

    /// Figure 2: a region's hourly average flow rate over one day.
    pub fn hourly_region_flow(&self, scenario: &Scenario, region: RegionId, day: u32) -> Vec<f64> {
        (0..24)
            .map(|h| {
                self.flow.region_flow(
                    &scenario.city.regions,
                    region,
                    (day * 24 + h).min(self.flow.hours() - 1),
                )
            })
            .collect()
    }

    /// Figure 3: CDF of per-segment |before − after| average flow
    /// differences.
    pub fn flow_difference_cdf(
        &self,
        scenario: &Scenario,
        before: std::ops::Range<u32>,
        after: std::ops::Range<u32>,
    ) -> Cdf {
        Cdf::new(
            self.flow
                .segment_flow_differences(&scenario.city.network, before, after),
        )
    }

    /// Figure 5: per-region daily average flow over a day range.
    pub fn daily_region_flow(
        &self,
        scenario: &Scenario,
        region: RegionId,
        days: std::ops::Range<u32>,
    ) -> Vec<f64> {
        days.map(|d| {
            self.flow
                .region_daily_avg(&scenario.city.regions, region, d)
        })
        .collect()
    }

    /// Table I: Pearson correlation between region-day flow rates and each
    /// disaster factor, over the disaster-and-recovery window.
    ///
    /// Flow is normalized by each region's own pre-disaster baseline so
    /// the statistic measures *impact severity* rather than each region's
    /// commuting volume — our synthetic downtown carries a much larger
    /// baseline share than its real counterpart, which would otherwise
    /// swamp the damage signal (documented in EXPERIMENTS.md).
    ///
    /// Returns `None` if any correlation is undefined (degenerate data).
    pub fn table1(&self, scenario: &Scenario) -> Option<Table1> {
        let tl = scenario.hurricane().timeline;
        let day_lo = tl.disaster_start_day;
        let day_hi = (tl.disaster_end_day + 5).min(tl.total_days);
        let base_lo = tl.disaster_start_day.saturating_sub(6);
        let base_hi = tl.disaster_start_day.saturating_sub(1).max(base_lo + 1);
        let mut flow_pts = Vec::new();
        let mut precip_pts = Vec::new();
        let mut wind_pts = Vec::new();
        let mut alt_pts = Vec::new();
        for region in scenario.city.regions.region_ids() {
            // Region centroid factors, daily means.
            let members = scenario.city.regions.landmarks_in(region);
            if members.is_empty() {
                continue;
            }
            let baseline = (base_lo..base_hi)
                .map(|d| {
                    self.flow
                        .region_daily_avg(&scenario.city.regions, region, d)
                })
                .sum::<f64>()
                / (base_hi - base_lo) as f64;
            if baseline <= 1e-9 {
                continue;
            }
            for day in day_lo..day_hi {
                let flow = self
                    .flow
                    .region_daily_avg(&scenario.city.regions, region, day)
                    / baseline;
                let mut precip = 0.0;
                let mut wind = 0.0;
                let mut alt = 0.0;
                let n = members.len() as f64;
                for &lm in &members {
                    let pos = scenario.city.network.landmark(lm).position;
                    // Midday factor as the day's representative value.
                    let hour = (day * 24 + 12).min(scenario.disaster.total_hours() - 1);
                    let v = scenario.disaster.factors_at(pos, hour);
                    precip += v.precipitation_mm_h / n;
                    wind += v.wind_mph / n;
                    alt += v.altitude_m / n;
                }
                flow_pts.push(flow);
                precip_pts.push(precip);
                wind_pts.push(wind);
                alt_pts.push(alt);
            }
        }
        Some(Table1 {
            precipitation: pearson(&precip_pts, &flow_pts)?,
            wind: pearson(&wind_pts, &flow_pts)?,
            altitude: pearson(&alt_pts, &flow_pts)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn analysis() -> (Scenario, DatasetAnalysis) {
        let scenario = ScenarioConfig::small().florence().build(81);
        let a = DatasetAnalysis::run(&scenario);
        (scenario, a)
    }

    #[test]
    fn pipeline_produces_trips_and_rescues() {
        let (_, a) = analysis();
        assert!(a.num_trips > 100, "only {} trips inferred", a.num_trips);
        assert!(!a.rescues.is_empty());
        assert!(a.cleaning.kept > 0);
        assert_eq!(a.deliveries_per_day.len(), 30);
    }

    #[test]
    fn observation2_flow_collapses_during_disaster() {
        let (scenario, a) = analysis();
        let tl = scenario.hurricane().timeline;
        let regions = &scenario.city.regions;
        let before: f64 = regions
            .region_ids()
            .map(|r| {
                (6..10)
                    .map(|d| a.flow.region_daily_avg(regions, r, d))
                    .sum::<f64>()
                    / 4.0
            })
            .sum();
        let peak_day = tl.peak_hour() / 24;
        let during: f64 = regions
            .region_ids()
            .map(|r| a.flow.region_daily_avg(regions, r, peak_day))
            .sum();
        assert!(
            during < before * 0.4,
            "flow should collapse during the disaster: before {before:.2}, during {during:.2}"
        );
    }

    #[test]
    fn observation2_deliveries_spike_during_disaster() {
        let (scenario, a) = analysis();
        let tl = scenario.hurricane().timeline;
        let before: usize = (4..10).map(|d| a.deliveries_per_day[d as usize]).sum();
        let during: usize = (tl.disaster_start_day..tl.disaster_end_day + 2)
            .map(|d| a.deliveries_per_day[d as usize])
            .sum();
        assert!(
            during > before,
            "hospital deliveries should spike: before {before}, during {during}"
        );
    }

    #[test]
    fn table1_signs_match_the_paper() {
        let (scenario, a) = analysis();
        let t = a.table1(&scenario).expect("correlations defined");
        assert!(
            t.precipitation < -0.3,
            "precipitation corr {}",
            t.precipitation
        );
        assert!(t.wind < -0.3, "wind corr {}", t.wind);
        assert!(t.altitude > 0.0, "altitude corr {}", t.altitude);
    }

    #[test]
    fn downtown_has_highest_rescue_density() {
        // Figure 4: the warmest region is the downtown basin. Regions have
        // very different sizes, so compare rescues per landmark.
        let (scenario, a) = analysis();
        let downtown = scenario.city.downtown_region();
        let density = |i: usize| {
            let members = scenario
                .city
                .regions
                .landmarks_in(mobirescue_roadnet::regions::RegionId(i as u8))
                .len()
                .max(1);
            a.rescued_per_region[i] as f64 / members as f64
        };
        let downtown_density = density(downtown.index());
        for i in 0..a.rescued_per_region.len() {
            if i != downtown.index() {
                assert!(
                    downtown_density >= density(i),
                    "region {i} density {} beats downtown {downtown_density} ({:?})",
                    density(i),
                    a.rescued_per_region
                );
            }
        }
    }

    #[test]
    fn figure_series_have_expected_shapes() {
        let (scenario, a) = analysis();
        let r1 = RegionId(0);
        let hourly = a.hourly_region_flow(&scenario, r1, 7);
        assert_eq!(hourly.len(), 24);
        let cdf = a.flow_difference_cdf(&scenario, 6..10, 17..21);
        assert!(!cdf.is_empty());
        let daily = a.daily_region_flow(&scenario, r1, 9..20);
        assert_eq!(daily.len(), 11);
    }
}
