//! Offline RL training (Section IV-C4).
//!
//! The paper trains the dispatch policy on historical data from a previous
//! disaster (Hurricane Michael) before running it — continually updated —
//! on the live one. [`train_offline`] reproduces that: the dispatcher
//! replays full simulated days of the training scenario's mined rescue
//! requests, learning from the Equation-5 reward, and the trained agent is
//! then transplanted into an evaluation dispatcher.

use crate::predictor::RequestPredictor;
use crate::rl_dispatch::{MobiRescueDispatcher, RlDispatchConfig};
use crate::scenario::Scenario;
use mobirescue_mobility::map_match::MapMatcher;
use mobirescue_mobility::rescue::RescueRecord;
use mobirescue_rl::qscore::QScore;
use mobirescue_sim::types::{RequestSpec, SimConfig};

/// Converts one day of mined rescue records into simulator request specs
/// (`appear_s` relative to the day's midnight).
///
/// Each request is placed on the segment nearest the trapped position that
/// is still *operable* at request time: rescue pick-ups happen at the
/// water's edge — a vehicle-borne team cannot drive into the inundated
/// block itself, and the paper's request distribution lives on the
/// remaining available network Ẽ.
pub fn requests_on_day(
    scenario: &Scenario,
    matcher: &MapMatcher,
    rescues: &[RescueRecord],
    day: u32,
) -> Vec<RequestSpec> {
    let net = &scenario.city.network;
    rescues
        .iter()
        .filter(|r| r.request_day() == day)
        .map(|r| {
            let hour = (r.request_minute / 60).min(scenario.disaster.total_hours() - 1);
            let cond = scenario.conditions.at(hour);
            let nearest = matcher.nearest_segment(net, r.request_position);
            let segment = if cond.is_operable(nearest) {
                nearest
            } else {
                cond.operable_segments()
                    .min_by(|a, b| {
                        let da = net.segment_midpoint(*a).distance_m(r.request_position);
                        let db = net.segment_midpoint(*b).distance_m(r.request_position);
                        da.partial_cmp(&db).expect("distances are never NaN")
                    })
                    .unwrap_or(nearest)
            };
            RequestSpec {
                appear_s: (r.request_minute - day * 24 * 60) * 60,
                segment,
            }
        })
        .collect()
}

/// The day with the most rescue requests — the paper picks Sep 16 as "the
/// day with the highest number of rescue requests".
pub fn busiest_request_day(rescues: &[RescueRecord]) -> Option<u32> {
    let mut counts = std::collections::HashMap::new();
    for r in rescues {
        *counts.entry(r.request_day()).or_insert(0usize) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(day, n)| (n, std::cmp::Reverse(day)))
        .map(|(d, _)| d)
}

/// Statistics of one training episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeStats {
    /// The scenario day replayed.
    pub day: u32,
    /// Requests injected.
    pub requests: usize,
    /// Requests served.
    pub served: usize,
    /// Requests served within the timeliness bound.
    pub timely: usize,
    /// Cumulative Equation-5 reward over the episode.
    pub reward: f64,
}

/// Report of an offline training run.
#[derive(Debug, Clone, Default)]
pub struct TrainingReport {
    /// Per-episode statistics, in order.
    pub episodes: Vec<EpisodeStats>,
}

impl TrainingReport {
    /// Mean served count over the first `n` and last `n` episodes — a
    /// crude learning-progress measure.
    pub fn improvement(&self, n: usize) -> Option<(f64, f64)> {
        if self.episodes.len() < 2 * n || n == 0 {
            return None;
        }
        let head: f64 = self.episodes[..n].iter().map(|e| e.reward).sum::<f64>() / n as f64;
        let tail: f64 = self.episodes[self.episodes.len() - n..]
            .iter()
            .map(|e| e.reward)
            .sum::<f64>()
            / n as f64;
        Some((head, tail))
    }
}

/// Trains a fresh agent by replaying `episodes` simulated days of the
/// training scenario (cycling over its disaster days), returning the
/// trained agent and the per-episode report.
///
/// # Panics
///
/// Panics if the training scenario yields no rescue requests on any
/// disaster day.
pub fn train_offline(
    scenario: &Scenario,
    predictor: Option<RequestPredictor>,
    rl_config: RlDispatchConfig,
    sim_config: &SimConfig,
    episodes: usize,
) -> (QScore, TrainingReport) {
    let matcher = MapMatcher::new(&scenario.city.network);
    let rescues = crate::predictor::mine_rescues(scenario);
    let tl = scenario.hurricane().timeline;
    // Days with at least one request, inside an extended disaster window.
    let days: Vec<u32> = (tl.disaster_start_day..(tl.disaster_end_day + 3).min(tl.total_days))
        .filter(|&d| rescues.iter().any(|r| r.request_day() == d))
        .collect();
    assert!(!days.is_empty(), "training scenario has no rescue requests");

    let mut dispatcher = MobiRescueDispatcher::new(scenario, predictor, rl_config);
    let mut report = TrainingReport::default();
    for ep in 0..episodes {
        let day = days[ep % days.len()];
        let requests = requests_on_day(scenario, &matcher, &rescues, day);
        let mut cfg = sim_config.clone();
        cfg.start_hour = day * 24;
        cfg.duration_hours = cfg
            .duration_hours
            .min(scenario.disaster.total_hours() - cfg.start_hour);
        dispatcher.reset_episode();
        let outcome = mobirescue_sim::run(
            &scenario.city,
            &scenario.conditions,
            &requests,
            &mut dispatcher,
            &cfg,
        );
        report.episodes.push(EpisodeStats {
            day,
            requests: requests.len(),
            served: outcome.total_served(),
            timely: outcome.total_timely_served(),
            reward: dispatcher.episode_reward,
        });
    }
    (dispatcher.into_policy(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::mine_rescues;
    use crate::scenario::ScenarioConfig;

    #[test]
    fn request_extraction_is_day_relative() {
        let scenario = ScenarioConfig::small().florence().build(61);
        let matcher = MapMatcher::new(&scenario.city.network);
        let rescues = mine_rescues(&scenario);
        let day = busiest_request_day(&rescues).expect("rescues exist");
        let requests = requests_on_day(&scenario, &matcher, &rescues, day);
        assert!(!requests.is_empty());
        for r in &requests {
            assert!(
                r.appear_s < 24 * 3_600,
                "appear_s {} beyond the day",
                r.appear_s
            );
        }
    }

    #[test]
    fn busiest_day_is_in_the_disaster_window() {
        let scenario = ScenarioConfig::small().florence().build(62);
        let rescues = mine_rescues(&scenario);
        let day = busiest_request_day(&rescues).unwrap();
        let tl = scenario.hurricane().timeline;
        assert!(day + 1 >= tl.disaster_start_day && day <= tl.disaster_end_day + 3);
    }

    #[test]
    fn offline_training_runs_and_reports() {
        let scenario = ScenarioConfig::small().michael().build(63);
        let mut sim = SimConfig::small(0);
        sim.duration_hours = 6;
        let (policy, report) = train_offline(&scenario, None, RlDispatchConfig::default(), &sim, 3);
        assert_eq!(report.episodes.len(), 3);
        assert!(policy.learn_steps() > 0, "policy never learned offline");
        assert!(report.episodes.iter().all(|e| e.requests > 0));
    }
}
