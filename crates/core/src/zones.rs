//! Dispatch zones: the RL action-space factorization.
//!
//! The paper's action is "which road segment each rescue team should drive
//! to" over the whole edge set — intractable verbatim for a small DQN and
//! unspecified in the paper. Following standard fleet-dispatch practice
//! (documented in DESIGN.md), the network is aggregated into a `k × k` grid
//! of zones; the policy picks a zone per team, and within a zone the team is
//! routed to the segment with the highest predicted demand.

use mobirescue_roadnet::generator::City;
use mobirescue_roadnet::graph::{LandmarkId, SegmentId};
use serde::{Deserialize, Serialize};

/// Identifier of a dispatch zone.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ZoneId(pub u16);

impl ZoneId {
    /// Index into zone storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A `k × k` spatial aggregation of the road network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZoneMap {
    k: usize,
    zone_of_landmark: Vec<ZoneId>,
    zone_of_segment: Vec<ZoneId>,
    /// A central landmark per zone (for distance features); `None` for
    /// zones containing no landmark.
    anchors: Vec<Option<LandmarkId>>,
    /// Segments per zone.
    segments: Vec<Vec<SegmentId>>,
}

impl ZoneMap {
    /// Builds a `k × k` zone grid over the city's bounding box.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the city network is empty.
    pub fn new(city: &City, k: usize) -> Self {
        assert!(k > 0, "zone grid must be non-empty");
        let bbox = city
            .network
            .bounding_box()
            .expect("city network must be non-empty");
        let origin = bbox.south_west;
        let (width_m, height_m) = bbox.north_east.local_xy_m(origin);
        let zone_of = |p: mobirescue_roadnet::geo::GeoPoint| -> ZoneId {
            let (x, y) = p.local_xy_m(origin);
            let c = ((x / width_m * k as f64) as isize).clamp(0, k as isize - 1) as usize;
            let r = ((y / height_m * k as f64) as isize).clamp(0, k as isize - 1) as usize;
            ZoneId((r * k + c) as u16)
        };
        let zone_of_landmark: Vec<ZoneId> = city
            .network
            .landmarks()
            .map(|lm| zone_of(lm.position))
            .collect();
        let zone_of_segment: Vec<ZoneId> = city
            .network
            .segments()
            .map(|seg| zone_of_landmark[seg.from.index()])
            .collect();
        let mut segments = vec![Vec::new(); k * k];
        for (i, z) in zone_of_segment.iter().enumerate() {
            segments[z.index()].push(SegmentId(i as u32));
        }
        // Anchor: the landmark closest to each zone's landmark centroid.
        let mut anchors = vec![None; k * k];
        #[allow(clippy::needless_range_loop)]
        for z in 0..k * k {
            let members: Vec<LandmarkId> = zone_of_landmark
                .iter()
                .enumerate()
                .filter(|(_, zz)| zz.index() == z)
                .map(|(i, _)| LandmarkId(i as u32))
                .collect();
            if members.is_empty() {
                continue;
            }
            let (mut cx, mut cy) = (0.0, 0.0);
            for &lm in &members {
                let (x, y) = city.network.landmark(lm).position.local_xy_m(origin);
                cx += x / members.len() as f64;
                cy += y / members.len() as f64;
            }
            anchors[z] = members.into_iter().min_by(|&a, &b| {
                let da = dist2(city, a, origin, cx, cy);
                let db = dist2(city, b, origin, cx, cy);
                da.partial_cmp(&db).expect("distances are never NaN")
            });
        }
        Self {
            k,
            zone_of_landmark,
            zone_of_segment,
            anchors,
            segments,
        }
    }

    /// Number of zones (`k²`).
    pub fn num_zones(&self) -> usize {
        self.k * self.k
    }

    /// Grid side length `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Zone of a landmark.
    pub fn of_landmark(&self, lm: LandmarkId) -> ZoneId {
        self.zone_of_landmark[lm.index()]
    }

    /// Zone of a segment.
    pub fn of_segment(&self, seg: SegmentId) -> ZoneId {
        self.zone_of_segment[seg.index()]
    }

    /// The zone's central landmark, if it contains any.
    pub fn anchor(&self, zone: ZoneId) -> Option<LandmarkId> {
        self.anchors[zone.index()]
    }

    /// Segments belonging to a zone.
    pub fn segments_in(&self, zone: ZoneId) -> &[SegmentId] {
        &self.segments[zone.index()]
    }

    /// Aggregates a per-segment demand map into per-zone totals.
    pub fn aggregate_demand(&self, per_segment: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.num_zones()];
        for (i, &d) in per_segment.iter().enumerate() {
            out[self.zone_of_segment[i].index()] += d;
        }
        out
    }
}

fn dist2(
    city: &City,
    lm: LandmarkId,
    origin: mobirescue_roadnet::geo::GeoPoint,
    cx: f64,
    cy: f64,
) -> f64 {
    let (x, y) = city.network.landmark(lm).position.local_xy_m(origin);
    (x - cx) * (x - cx) + (y - cy) * (y - cy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobirescue_roadnet::generator::CityConfig;

    #[test]
    fn zones_partition_the_network() {
        let city = CityConfig::small().build(4);
        let zones = ZoneMap::new(&city, 4);
        assert_eq!(zones.num_zones(), 16);
        let total: usize = (0..16).map(|z| zones.segments_in(ZoneId(z)).len()).sum();
        assert_eq!(total, city.network.num_segments());
        for seg in city.network.segments() {
            let z = zones.of_segment(seg.id);
            assert!(zones.segments_in(z).contains(&seg.id));
        }
    }

    #[test]
    fn anchors_lie_in_their_zone() {
        let city = CityConfig::small().build(5);
        let zones = ZoneMap::new(&city, 3);
        for z in 0..zones.num_zones() {
            if let Some(anchor) = zones.anchor(ZoneId(z as u16)) {
                assert_eq!(zones.of_landmark(anchor).index(), z);
            }
        }
    }

    #[test]
    fn demand_aggregation_sums_per_zone() {
        let city = CityConfig::small().build(6);
        let zones = ZoneMap::new(&city, 2);
        let per_segment = vec![1.0; city.network.num_segments()];
        let agg = zones.aggregate_demand(&per_segment);
        assert_eq!(agg.iter().sum::<f64>(), city.network.num_segments() as f64);
        assert_eq!(agg.len(), 4);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_k_rejected() {
        let city = CityConfig::small().build(7);
        let _ = ZoneMap::new(&city, 0);
    }
}
