//! Time-series request prediction — the *Rescue* baseline's predictor.
//!
//! Per the paper (Section V-A), *Rescue* \[8\] "predicts the rescue request
//! demand at the current hour by using the weighted average request demand
//! at this hour in several previous days", without looking at any
//! disaster-related factor — which is exactly why its accuracy trails the
//! SVM (Figures 15–16).

use mobirescue_mobility::map_match::MapMatcher;
use mobirescue_mobility::rescue::RescueRecord;
use mobirescue_roadnet::graph::{RoadNetwork, SegmentId};

/// Weighted same-hour historical average demand per segment.
#[derive(Debug, Clone)]
pub struct TimeSeriesPredictor {
    /// Predicted demand per `[segment][hour_of_day]`.
    demand: Vec<[f64; 24]>,
    lookback_days: u32,
}

impl TimeSeriesPredictor {
    /// Fits the predictor for `target_day` from the historical requests of
    /// the `lookback_days` preceding days, with geometrically decaying
    /// weights (most recent day heaviest).
    ///
    /// # Panics
    ///
    /// Panics if `lookback_days == 0` or exceeds `target_day`.
    pub fn fit(
        net: &RoadNetwork,
        matcher: &MapMatcher,
        history: &[RescueRecord],
        target_day: u32,
        lookback_days: u32,
    ) -> Self {
        assert!(lookback_days > 0, "need at least one day of history");
        assert!(lookback_days <= target_day, "lookback reaches before day 0");
        let mut demand = vec![[0.0; 24]; net.num_segments()];
        // Weights 1, 1/2, 1/4, ... normalized.
        let weights: Vec<f64> = (0..lookback_days).map(|i| 0.5_f64.powi(i as i32)).collect();
        let norm: f64 = weights.iter().sum();
        for r in history {
            let day = r.request_day();
            if day >= target_day || day + lookback_days < target_day {
                continue;
            }
            let back = target_day - day; // 1..=lookback
            let w = weights[(back - 1) as usize] / norm;
            let seg = matcher.nearest_segment(net, r.request_position);
            let hour = ((r.request_minute / 60) % 24) as usize;
            demand[seg.index()][hour] += w;
        }
        Self {
            demand,
            lookback_days,
        }
    }

    /// Days of history used.
    pub fn lookback_days(&self) -> u32 {
        self.lookback_days
    }

    /// Predicted demand on `segment` at `hour_of_day`.
    ///
    /// # Panics
    ///
    /// Panics if `hour_of_day >= 24` or the segment is out of range.
    pub fn predicted_demand(&self, segment: SegmentId, hour_of_day: u32) -> f64 {
        assert!(hour_of_day < 24, "hour of day out of range");
        self.demand[segment.index()][hour_of_day as usize]
    }

    /// Per-segment predicted demand vector at `hour_of_day`.
    ///
    /// # Panics
    ///
    /// Panics if `hour_of_day >= 24`.
    pub fn per_segment_at(&self, hour_of_day: u32) -> Vec<f64> {
        assert!(hour_of_day < 24, "hour of day out of range");
        self.demand
            .iter()
            .map(|h| h[hour_of_day as usize])
            .collect()
    }

    /// Person-level classification proxy for Figures 15–16: a person is
    /// predicted to need rescue when their segment's predicted demand at
    /// that hour is at least `threshold`.
    pub fn predict_person(&self, segment: SegmentId, hour_of_day: u32, threshold: f64) -> bool {
        self.predicted_demand(segment, hour_of_day) >= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobirescue_mobility::person::PersonId;
    use mobirescue_roadnet::generator::CityConfig;

    fn record(day: u32, hour: u32, pos: mobirescue_roadnet::geo::GeoPoint) -> RescueRecord {
        RescueRecord {
            person: PersonId(0),
            request_minute: day * 1440 + hour * 60,
            request_position: pos,
            arrival_minute: day * 1440 + hour * 60 + 120,
            hospital_index: 0,
        }
    }

    #[test]
    fn recent_days_weigh_more() {
        let city = CityConfig::small().build(2);
        let matcher = MapMatcher::new(&city.network);
        let p = city.center;
        let seg = matcher.nearest_segment(&city.network, p);
        // One request at hour 10 yesterday, one two days ago at hour 11.
        let history = vec![record(14, 10, p), record(13, 11, p)];
        let ts = TimeSeriesPredictor::fit(&city.network, &matcher, &history, 15, 3);
        assert!(ts.predicted_demand(seg, 10) > ts.predicted_demand(seg, 11));
        assert_eq!(ts.predicted_demand(seg, 5), 0.0);
        assert_eq!(ts.lookback_days(), 3);
    }

    #[test]
    fn ignores_days_outside_the_window() {
        let city = CityConfig::small().build(3);
        let matcher = MapMatcher::new(&city.network);
        let p = city.center;
        let seg = matcher.nearest_segment(&city.network, p);
        let history = vec![record(5, 10, p), record(15, 10, p)];
        let ts = TimeSeriesPredictor::fit(&city.network, &matcher, &history, 15, 2);
        // Day 5 is too old; day 15 is the target itself (excluded).
        assert_eq!(ts.predicted_demand(seg, 10), 0.0);
    }

    #[test]
    fn person_classification_thresholds_demand() {
        let city = CityConfig::small().build(4);
        let matcher = MapMatcher::new(&city.network);
        let p = city.center;
        let seg = matcher.nearest_segment(&city.network, p);
        let history = vec![record(14, 9, p), record(14, 9, p)];
        let ts = TimeSeriesPredictor::fit(&city.network, &matcher, &history, 15, 1);
        assert!(ts.predict_person(seg, 9, 0.5));
        assert!(!ts.predict_person(seg, 10, 0.5));
    }

    #[test]
    #[should_panic(expected = "before day 0")]
    fn excessive_lookback_rejected() {
        let city = CityConfig::small().build(5);
        let matcher = MapMatcher::new(&city.network);
        let _ = TimeSeriesPredictor::fit(&city.network, &matcher, &[], 2, 5);
    }
}
