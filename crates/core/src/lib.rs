//! The MobiRescue system — the paper's primary contribution.
//!
//! MobiRescue (ICDCS 2020) dispatches rescue teams during a flooding
//! disaster. Every dispatch period (default 5 minutes) it predicts the
//! distribution of potential rescue requests per road segment with an SVM
//! over disaster-related factors (Section IV-B), then picks a destination
//! for every team with a reinforcement-learning policy whose reward is
//! `r = α·N^q − β·T^d − γ·N^m` (Section IV-C).
//!
//! Crate layout:
//!
//! * [`scenario`] — city + hurricane + population bundles
//!   ([`scenario::ScenarioConfig::small`] /
//!   [`scenario::ScenarioConfig::charlotte_like`]);
//! * [`analysis`] — the Section-III dataset measurement pipeline
//!   (Table I, Figures 2–6);
//! * [`predictor`] — the SVM request predictor (Equations 1–2) and the
//!   per-segment prediction evaluation (Figures 15–16);
//! * [`timeseries`] — the *Rescue* baseline's predictor;
//! * [`zones`] — the RL action-space factorization (see DESIGN.md);
//! * [`rl_dispatch`] — the MobiRescue dispatcher (DQN + online training);
//! * [`training`] — offline training on the Hurricane Michael scenario;
//! * [`baselines`] — the *Schedule* and *Rescue* comparison dispatchers;
//! * [`experiment`] — the end-to-end Section-V comparison harness;
//! * [`extension`] — Section IV-C5 extensions (generic factor sets).
//!
//! # Examples
//!
//! ```no_run
//! use mobirescue_core::experiment::{run_comparison, ExperimentConfig};
//!
//! let comparison = run_comparison(&ExperimentConfig::small(42));
//! let mr = comparison.method("MobiRescue");
//! let schedule = comparison.method("Schedule");
//! println!(
//!     "MobiRescue served {} vs Schedule {}",
//!     mr.outcome.total_timely_served(),
//!     schedule.outcome.total_timely_served()
//! );
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod baselines;
pub mod experiment;
pub mod extension;
pub mod predictor;
pub mod rl_dispatch;
pub mod scenario;
pub mod timeseries;
pub mod training;
pub mod zones;

pub use analysis::{DatasetAnalysis, Table1};
pub use baselines::{RescueDispatcher, ScheduleDispatcher};
pub use experiment::{run_comparison, Comparison, ExperimentConfig, MethodResult};
pub use extension::{FactorSetPredictor, FactorSetPredictorConfig};
pub use predictor::{PredictorConfig, RequestPredictor, SegmentEval};
pub use rl_dispatch::{MobiRescueDispatcher, RlDispatchConfig};
pub use scenario::{Scenario, ScenarioConfig};
pub use timeseries::TimeSeriesPredictor;
pub use training::{train_offline, TrainingReport};
pub use zones::{ZoneId, ZoneMap};
