//! Scenario bundles: city + disaster + synthetic population in one value.
//!
//! Everything in the evaluation consumes a [`Scenario`]; the paper's two
//! storms become [`ScenarioConfig::florence`]/[`ScenarioConfig::michael`]
//! over the same city (Michael is the training disaster, Florence the
//! evaluation disaster, matching Section V-B).

use mobirescue_disaster::hurricane::Hurricane;
use mobirescue_disaster::scenario::DisasterScenario;
use mobirescue_mobility::flow::HourlyConditions;
use mobirescue_mobility::generator::{generate, GenerationOutput, PopulationConfig};
use mobirescue_roadnet::generator::{City, CityConfig};

/// Configuration of a full scenario build.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// City generation parameters.
    pub city: CityConfig,
    /// The storm.
    pub hurricane: Hurricane,
    /// Population parameters.
    pub population: PopulationConfig,
}

impl ScenarioConfig {
    /// Small test-scale Florence scenario (12×12 city, 300 people).
    pub fn small() -> Self {
        Self {
            city: CityConfig::small(),
            hurricane: Hurricane::florence(),
            population: PopulationConfig::small(),
        }
    }

    /// Mid-scale Florence scenario for benchmarks that must finish in
    /// minutes (24×24 city, 2,500 people).
    pub fn medium() -> Self {
        let mut city = CityConfig::charlotte_like();
        city.grid_width = 24;
        city.grid_height = 24;
        let mut population = PopulationConfig::charlotte_like();
        population.num_people = 2_500;
        Self {
            city,
            hurricane: Hurricane::florence(),
            population,
        }
    }

    /// Paper-scale Florence scenario (36×36 city, 8,590 people).
    pub fn charlotte_like() -> Self {
        Self {
            city: CityConfig::charlotte_like(),
            hurricane: Hurricane::florence(),
            population: PopulationConfig::charlotte_like(),
        }
    }

    /// The same configuration with the Florence storm.
    pub fn florence(mut self) -> Self {
        self.hurricane = Hurricane::florence();
        self
    }

    /// The same configuration with the Michael storm (the paper's training
    /// disaster).
    pub fn michael(mut self) -> Self {
        self.hurricane = Hurricane::michael();
        self
    }

    /// Builds the scenario deterministically from `seed`. The city is
    /// derived from the seed alone, so Florence and Michael scenarios with
    /// the same seed share the same city (as in the paper: same Charlotte,
    /// two storms).
    pub fn build(&self, seed: u64) -> Scenario {
        let city = self.city.build(seed);
        let disaster = DisasterScenario::new(&city, self.hurricane.clone(), seed);
        let generated = generate(&city, &disaster, &self.population, seed);
        let conditions = HourlyConditions::compute(&city.network, &disaster);
        Scenario {
            config: self.clone(),
            seed,
            city,
            disaster,
            generated,
            conditions,
        }
    }
}

/// A fully built scenario.
#[derive(Debug)]
pub struct Scenario {
    /// The configuration it was built from.
    pub config: ScenarioConfig,
    /// The build seed.
    pub seed: u64,
    /// The generated city.
    pub city: City,
    /// Terrain + weather + flood state.
    pub disaster: DisasterScenario,
    /// The synthetic population dataset (and generator truth).
    pub generated: GenerationOutput,
    /// Per-hour network conditions (G̃ for every hour).
    pub conditions: HourlyConditions,
}

impl Scenario {
    /// The storm driving this scenario.
    pub fn hurricane(&self) -> &Hurricane {
        self.disaster.hurricane()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_coherent_small_scenario() {
        let s = ScenarioConfig::small().build(3);
        assert_eq!(s.generated.dataset.num_people(), 300);
        assert_eq!(s.conditions.hours(), s.disaster.total_hours());
        assert!(s.city.network.num_segments() > 0);
    }

    #[test]
    fn florence_and_michael_share_the_city() {
        let f = ScenarioConfig::small().florence().build(9);
        let m = ScenarioConfig::small().michael().build(9);
        assert_eq!(f.city.hospitals, m.city.hospitals);
        assert_eq!(f.city.network.num_segments(), m.city.network.num_segments());
        assert_ne!(f.hurricane().name, m.hurricane().name);
    }
}
