//! Cross-crate persistence: a predictor trained on one process must
//! produce identical dispatch inputs after a text round-trip, and a trained
//! policy network must round-trip through the rl persistence format.

use mobirescue_core::predictor::{PredictorConfig, RequestPredictor};
use mobirescue_core::scenario::ScenarioConfig;
use mobirescue_mobility::map_match::MapMatcher;
use mobirescue_rl::nn::Mlp;
use mobirescue_rl::persist::{mlp_from_text, mlp_to_text};

#[test]
fn predictor_round_trip_preserves_the_demand_distribution() {
    let michael = ScenarioConfig::small().michael().build(42);
    let florence = ScenarioConfig::small().florence().build(42);
    let predictor = RequestPredictor::train_on(&michael, &PredictorConfig::default());

    let revived = RequestPredictor::from_text(&predictor.to_text()).expect("round trip parses");

    let matcher = MapMatcher::new(&florence.city.network);
    let tl = florence.hurricane().timeline;
    for hour in [
        (tl.disaster_start_day + 1) * 24,
        tl.peak_hour(),
        tl.peak_hour() + 6,
    ] {
        let a = predictor.predict_distribution(&florence, &matcher, hour);
        let b = revived.predict_distribution(&florence, &matcher, hour);
        assert_eq!(a, b, "distribution diverged at hour {hour}");
    }
}

#[test]
fn policy_network_text_round_trip_is_exact() {
    // Shape matches the dispatcher's scoring network.
    let mut net = Mlp::new(&[6, 32, 32, 1], 42);
    net.visit_params_mut(|i, w, _| *w *= 1.0 + (i % 7) as f64 * 1e-3);
    let revived = mlp_from_text(&mlp_to_text(&net)).expect("round trip parses");
    for probe in [
        [0.0, 0.0, 0.0, 0.0, 0.0, 1.0],
        [0.2, 0.9, 0.4, 0.5, 0.2, 0.0],
        [1.0, 0.0, 0.0, 0.3, 1.0, 0.0],
    ] {
        assert_eq!(net.predict(&probe), revived.predict(&probe));
    }
}
