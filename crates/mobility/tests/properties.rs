//! Property-based tests for the mobility pipeline.

use mobirescue_disaster::hurricane::Hurricane;
use mobirescue_disaster::scenario::DisasterScenario;
use mobirescue_mobility::cleaning::{clean, CleaningConfig};
use mobirescue_mobility::generator::{generate, PopulationConfig};
use mobirescue_mobility::person::PersonId;
use mobirescue_mobility::stats::{pearson, Cdf};
use mobirescue_mobility::trace::GpsPing;
use mobirescue_roadnet::generator::CityConfig;
use mobirescue_roadnet::geo::{BoundingBox, GeoPoint};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// CDFs are monotone, bounded, and quantiles invert fractions.
    #[test]
    fn cdf_laws(samples in prop::collection::vec(-1_000.0f64..1_000.0, 1..200)) {
        let cdf = Cdf::new(samples.clone());
        prop_assert_eq!(cdf.len(), samples.len());
        let lo = cdf.min().unwrap();
        let hi = cdf.max().unwrap();
        prop_assert_eq!(cdf.fraction_at_or_below(hi), 1.0);
        prop_assert!(cdf.fraction_at_or_below(lo) > 0.0);
        prop_assert_eq!(cdf.fraction_at_or_below(lo - 1.0), 0.0);
        let mut prev = 0.0;
        for (_, f) in cdf.sampled_points(16) {
            prop_assert!(f >= prev - 1e-12);
            prev = f;
        }
        for q in [0.1, 0.5, 0.9] {
            let x = cdf.quantile(q);
            prop_assert!(cdf.fraction_at_or_below(x) + 1e-12 >= q);
        }
    }

    /// Pearson correlation is symmetric, bounded, and scale-invariant.
    #[test]
    fn pearson_laws(
        xs in prop::collection::vec(-100.0f64..100.0, 3..40),
        scale in 0.1f64..10.0,
        offset in -50.0f64..50.0,
    ) {
        let ys: Vec<f64> = xs.iter().enumerate().map(|(i, x)| x * 0.5 + (i as f64).sin() * 10.0).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            let r_sym = pearson(&ys, &xs).unwrap();
            prop_assert!((r - r_sym).abs() < 1e-9);
            let scaled: Vec<f64> = ys.iter().map(|y| y * scale + offset).collect();
            if let Some(r_scaled) = pearson(&xs, &scaled) {
                prop_assert!((r - r_scaled).abs() < 1e-6, "{r} vs {r_scaled}");
            }
        }
    }

    /// Cleaning never invents pings, keeps order, and respects the bounds.
    #[test]
    fn cleaning_laws(
        raw in prop::collection::vec((0u32..5_000, -0.2f64..0.2, -0.2f64..0.2), 0..60),
    ) {
        let center = GeoPoint::new(35.2271, -80.8431);
        let bounds = BoundingBox::new(center.offset_m(-8_000.0, -8_000.0), center.offset_m(8_000.0, 8_000.0));
        let mut pings: Vec<GpsPing> = raw
            .iter()
            .map(|&(minute, dlat, dlon)| GpsPing {
                person: PersonId(0),
                minute,
                position: GeoPoint::new(center.lat + dlat, center.lon + dlon),
                altitude_m: 0.0,
                speed_mps: 0.0,
            })
            .collect();
        pings.sort_by_key(|p| (p.person, p.minute));
        let (kept, report) = clean(&pings, &CleaningConfig::for_bounds(bounds));
        prop_assert_eq!(kept.len() + report.out_of_bounds + report.redundant, pings.len());
        prop_assert!(kept.windows(2).all(|w| w[0].minute <= w[1].minute));
        prop_assert!(kept.iter().all(|p| bounds.contains(p.position)));
    }
}

/// Generation invariants that hold for any seed (moved out of proptest to
/// keep runtime bounded: 6 seeds, full pipeline each).
#[test]
fn generation_invariants_across_seeds() {
    for seed in [1u64, 2, 3] {
        let city = CityConfig::small().build(seed);
        let scenario = DisasterScenario::new(&city, Hurricane::florence(), seed);
        let mut config = PopulationConfig::small();
        config.num_people = 120;
        let out = generate(&city, &scenario, &config, seed);
        assert_eq!(out.dataset.num_people(), 120);
        // Pings sorted and inside the scenario window.
        assert!(out
            .dataset
            .pings
            .windows(2)
            .all(|w| (w[0].person, w[0].minute) <= (w[1].person, w[1].minute)));
        let end = scenario.total_hours() * 60;
        assert!(out.dataset.pings.iter().all(|p| p.minute < end));
        // Every true rescue is causal and indexes a real hospital.
        for r in &out.true_rescues {
            assert!(r.rescue_minute > r.trapped_minute);
            assert!(city.hospitals.contains(&r.hospital));
            assert!(
                scenario.is_flooded(
                    r.position,
                    (r.trapped_minute / 60).min(scenario.total_hours() - 1)
                ) || {
                    // The trap decision was made at the top of the hour; the
                    // recorded minute may drift past a receding boundary.
                    let h = (r.trapped_minute / 60).saturating_sub(1);
                    scenario.is_flooded(r.position, h)
                }
            );
        }
    }
}
