//! Trip inference from sparse GPS trajectories.
//!
//! Vehicle flow rate (Definition 2) is measured from trips: whenever two
//! consecutive pings of a person are far enough apart, the person drove from
//! the first position to the second. Each inferred [`Trip`] is later routed
//! over the (possibly flood-damaged) network to attribute flow to road
//! segments.

use crate::map_match::MapMatcher;
use crate::person::PersonId;
use crate::trace::{GpsPing, MobilityDataset};
use mobirescue_roadnet::graph::{LandmarkId, RoadNetwork};
use serde::{Deserialize, Serialize};

/// Minimum displacement between consecutive pings to count as a vehicle
/// trip, meters.
pub const DEFAULT_TRIP_THRESHOLD_M: f64 = 350.0;

/// One inferred vehicle trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trip {
    /// Who travelled.
    pub person: PersonId,
    /// Departure time (the earlier ping's minute).
    pub depart_minute: u32,
    /// Origin landmark (map-matched).
    pub from: LandmarkId,
    /// Destination landmark (map-matched).
    pub to: LandmarkId,
}

impl Trip {
    /// Hour of departure.
    pub fn depart_hour(&self) -> u32 {
        self.depart_minute / 60
    }
}

/// Extracts trips from a cleaned dataset: every consecutive ping pair of the
/// same person displaced by more than `threshold_m` becomes a [`Trip`]
/// between the map-matched landmarks (self-trips after matching are
/// dropped).
pub fn extract_trips(
    dataset: &MobilityDataset,
    net: &RoadNetwork,
    matcher: &MapMatcher,
    threshold_m: f64,
) -> Vec<Trip> {
    let mut trips = Vec::new();
    let mut prev: Option<&GpsPing> = None;
    for ping in &dataset.pings {
        if let Some(p) = prev {
            if p.person == ping.person && p.position.distance_m(ping.position) > threshold_m {
                let from = matcher.nearest_landmark(net, p.position);
                let to = matcher.nearest_landmark(net, ping.position);
                if from != to {
                    trips.push(Trip {
                        person: ping.person,
                        depart_minute: p.minute,
                        from,
                        to,
                    });
                }
            }
        }
        prev = Some(ping);
    }
    trips
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::person::{MobilityProfile, Person};
    use mobirescue_roadnet::generator::CityConfig;
    use mobirescue_roadnet::geo::GeoPoint;

    fn ping(person: u32, minute: u32, pos: GeoPoint) -> GpsPing {
        GpsPing {
            person: PersonId(person),
            minute,
            position: pos,
            altitude_m: 0.0,
            speed_mps: 0.0,
        }
    }

    #[test]
    fn detects_long_displacements_only() {
        let city = CityConfig::small().build(1);
        let matcher = MapMatcher::new(&city.network);
        let a = city.center;
        let near = a.offset_m(50.0, 0.0);
        let far = a.offset_m(3_000.0, 0.0);
        let person = Person {
            id: PersonId(0),
            home: a,
            work: a,
            profile: MobilityProfile::Homebody,
        };
        let ds = MobilityDataset {
            people: vec![person],
            pings: vec![ping(0, 0, a), ping(0, 60, near), ping(0, 120, far)],
        };
        let trips = extract_trips(&ds, &city.network, &matcher, DEFAULT_TRIP_THRESHOLD_M);
        assert_eq!(trips.len(), 1);
        assert_eq!(trips[0].depart_minute, 60);
        assert_eq!(trips[0].depart_hour(), 1);
        assert_ne!(trips[0].from, trips[0].to);
    }

    #[test]
    fn no_trips_across_people() {
        let city = CityConfig::small().build(1);
        let matcher = MapMatcher::new(&city.network);
        let a = city.center;
        let far = a.offset_m(3_000.0, 0.0);
        let mk = |id: u32| Person {
            id: PersonId(id),
            home: a,
            work: a,
            profile: MobilityProfile::Homebody,
        };
        let ds = MobilityDataset {
            people: vec![mk(0), mk(1)],
            pings: vec![ping(0, 0, a), ping(1, 30, far)],
        };
        let trips = extract_trips(&ds, &city.network, &matcher, DEFAULT_TRIP_THRESHOLD_M);
        assert!(trips.is_empty());
    }
}
