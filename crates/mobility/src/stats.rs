//! Statistics used by the paper's dataset analysis: Pearson correlation
//! (Table I) and empirical CDFs (Figures 3, 10, 12, 13, 15, 16).

use serde::{Deserialize, Serialize};

/// Arithmetic mean, `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation, `0.0` for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson correlation coefficient `cov(x, y) / (σ_x σ_y)` — the statistic
/// of the paper's Table I.
///
/// Returns `None` when the slices differ in length, have fewer than two
/// samples, or either is constant (undefined correlation).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let (mx, my) = (mean(xs), mean(ys));
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// An empirical cumulative distribution function.
///
/// # Examples
///
/// ```
/// use mobirescue_mobility::stats::Cdf;
///
/// let cdf = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples. NaN samples are dropped.
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaNs removed"));
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `≤ x`, in `[0, 1]`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (nearest-rank), clamping `q` to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics on an empty CDF.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// Minimum sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        mean(&self.sorted)
    }

    /// `(x, F(x))` pairs for plotting, one per sample.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }

    /// `(x, F(x))` pairs at `bins + 1` evenly spaced x values spanning the
    /// sample range — compact series for printed figures.
    pub fn sampled_points(&self, bins: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || bins == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        (0..=bins)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / bins as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_correlations() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_pos: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        let y_neg: Vec<f64> = x.iter().map(|v| -3.0 * v).collect();
        assert!((pearson(&x, &y_pos).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_undefined_cases() {
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[3.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn pearson_uncorrelated_is_small() {
        // Orthogonal pattern.
        let x = [1.0, -1.0, 1.0, -1.0];
        let y = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn cdf_basic_queries() {
        let cdf = Cdf::new(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.fraction_at_or_below(5.0), 0.0);
        assert_eq!(cdf.fraction_at_or_below(20.0), 0.5);
        assert_eq!(cdf.fraction_at_or_below(100.0), 1.0);
        assert_eq!(cdf.min(), Some(10.0));
        assert_eq!(cdf.max(), Some(40.0));
        assert_eq!(cdf.quantile(0.0), 10.0);
        assert_eq!(cdf.quantile(0.25), 10.0);
        assert_eq!(cdf.quantile(1.0), 40.0);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let cdf = Cdf::new(vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]);
        let pts = cdf.points();
        assert_eq!(pts.len(), 7);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_drops_nans() {
        let cdf = Cdf::new(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn sampled_points_span_range() {
        let cdf = Cdf::new((0..100).map(|i| i as f64).collect());
        let pts = cdf.sampled_points(10);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[10].0, 99.0);
        assert_eq!(pts[10].1, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty CDF")]
    fn quantile_of_empty_panics() {
        Cdf::new(vec![]).quantile(0.5);
    }
}
