//! Streaming resident generation for metro-scale populations.
//!
//! The batch generator ([`crate::generator::generate`]) materializes every
//! resident plus their full GPS trace; at 2M residents that is tens of
//! gigabytes and minutes of work. [`ResidentStream`] instead derives any
//! resident *independently* from `(seed, index)` via a splitmix64-keyed
//! per-resident RNG, so callers can walk millions of residents in fixed
//! memory — chunk by chunk, reusing one buffer — without ever holding the
//! population. [`generate_streamed`] builds on it to produce a
//! deterministic evenly-strided sample of the metro population whose
//! [`GenerationOutput`] plugs into the existing rescue-mining pipeline
//! unchanged, while `total_residents` records the true population size.

use crate::generator::{sample_person, simulate_person, GenerationOutput, PopulationConfig};
use crate::person::{Person, PersonId};
use crate::trace::MobilityDataset;
use mobirescue_disaster::scenario::DisasterScenario;
use mobirescue_roadnet::generator::City;
use mobirescue_roadnet::geo::GeoPoint;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Domain tag for per-resident *sampling* RNGs (home/work/profile).
const PERSON_MAGIC: u64 = 0x7265_7369_6465_6e74; // "resident"
/// Domain tag for per-resident *trace* RNGs (trips, sheltering, rescue).
const TRACE_MAGIC: u64 = 0x6d65_7472_6f70_696e; // "metropin"

/// splitmix64 finalizer: mixes `(seed, index)` into a statistically
/// independent 64-bit stream key. This is the standard seeding mixer
/// (Vigna 2015) — consecutive indices land in unrelated RNG states, which
/// is what makes per-resident streams independent of generation order.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// RNG for resident `index` of the population keyed by `seed` and `domain`.
fn resident_rng(seed: u64, domain: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(seed ^ domain).wrapping_add(splitmix64(index)))
}

/// A lazily generated metro population: any resident is derived on demand
/// from `(seed, index)`, so iterating 2M residents needs memory for one
/// chunk, not one population.
pub struct ResidentStream<'a> {
    city: &'a City,
    config: &'a PopulationConfig,
    landmarks: Vec<GeoPoint>,
    seed: u64,
    next: u64,
}

impl<'a> ResidentStream<'a> {
    /// A stream over the `config.num_people` residents of `city`.
    ///
    /// # Panics
    ///
    /// Panics if the population is empty.
    pub fn new(city: &'a City, config: &'a PopulationConfig, seed: u64) -> Self {
        assert!(config.num_people > 0, "population must be non-empty");
        let landmarks = city.network.landmarks().map(|lm| lm.position).collect();
        Self {
            city,
            config,
            landmarks,
            seed,
            next: 0,
        }
    }

    /// Total residents this stream describes.
    pub fn total(&self) -> usize {
        self.config.num_people
    }

    /// Residents not yet emitted by [`next_chunk`](Self::next_chunk).
    pub fn remaining(&self) -> usize {
        self.config.num_people - self.next as usize
    }

    /// Materializes resident `index` (independent of cursor position and of
    /// any other resident — random access is O(1) in population size).
    ///
    /// # Panics
    ///
    /// Panics if `index >= total()`.
    pub fn resident(&self, index: u64) -> Person {
        assert!(
            (index as usize) < self.config.num_people,
            "resident {index} out of a population of {}",
            self.config.num_people
        );
        let mut rng = resident_rng(self.seed, PERSON_MAGIC, index);
        sample_person(
            self.city,
            self.config,
            &self.landmarks,
            PersonId(index as u32),
            &mut rng,
        )
    }

    /// Appends up to `max` further residents into `buf` (which the caller
    /// clears and reuses across calls — no per-chunk allocation after the
    /// first) and advances the cursor. Returns the number appended; 0 means
    /// the stream is exhausted.
    pub fn next_chunk(&mut self, max: usize, buf: &mut Vec<Person>) -> usize {
        buf.clear();
        let n = max.min(self.remaining());
        buf.reserve(n);
        for _ in 0..n {
            buf.push(self.resident(self.next));
            self.next += 1;
        }
        n
    }
}

/// Generates a deterministic dataset for a metro-scale population by
/// streaming residents and materializing traces for an evenly strided
/// sample of at most `cap` of them. Sampled residents get dense re-indexed
/// [`PersonId`]s (`0..sampled`) so downstream per-person arrays stay small;
/// `total_residents` preserves the true population size for rate math.
///
/// Each sampled resident's trace comes from its own `(seed, global index)`
/// RNG, so the output is independent of `cap`-induced chunking and two runs
/// with the same seed agree resident-by-resident.
///
/// # Panics
///
/// Panics if `cap == 0`, the ping interval is empty, or the city has no
/// hospitals.
pub fn generate_streamed(
    city: &City,
    scenario: &DisasterScenario,
    config: &PopulationConfig,
    seed: u64,
    cap: usize,
) -> GenerationOutput {
    assert!(cap > 0, "sample cap must be positive");
    assert!(
        0 < config.ping_interval_min && config.ping_interval_min <= config.ping_interval_max,
        "ping interval must be a non-empty range"
    );
    assert!(!city.hospitals.is_empty(), "city must have hospitals");
    let stream = ResidentStream::new(city, config, seed);
    let total = stream.total();
    let sampled = cap.min(total);
    let stride = total as u64 / sampled as u64;

    let hospital_pos: Vec<GeoPoint> = city
        .hospitals
        .iter()
        .map(|&h| city.network.landmark(h).position)
        .collect();

    let mut people = Vec::with_capacity(sampled);
    let mut pings = Vec::new();
    let mut true_rescues = Vec::new();
    for k in 0..sampled as u64 {
        let global = k * stride;
        let mut person = stream.resident(global);
        person.id = PersonId(k as u32);
        let mut rng = resident_rng(seed, TRACE_MAGIC, global);
        simulate_person(
            &person,
            city,
            scenario,
            config,
            &hospital_pos,
            &mut rng,
            &mut pings,
            &mut true_rescues,
        );
        people.push(person);
    }

    GenerationOutput {
        dataset: MobilityDataset { people, pings },
        true_rescues,
        total_residents: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobirescue_disaster::hurricane::Hurricane;
    use mobirescue_roadnet::generator::CityConfig;

    fn setup() -> (City, DisasterScenario) {
        let city = CityConfig::small().build(77);
        let scenario = DisasterScenario::new(&city, Hurricane::florence(), 77);
        (city, scenario)
    }

    #[test]
    fn chunked_walk_matches_random_access() {
        let (city, _) = setup();
        let config = PopulationConfig::small();
        let mut stream = ResidentStream::new(&city, &config, 9);
        let reference = ResidentStream::new(&city, &config, 9);
        let mut buf = Vec::new();
        let mut index = 0u64;
        // Uneven chunk sizes must not change which residents come out.
        for chunk in [7usize, 64, 1, 100_000] {
            let n = stream.next_chunk(chunk, &mut buf);
            for person in &buf {
                assert_eq!(*person, reference.resident(index), "resident {index}");
                index += 1;
            }
            if n == 0 {
                break;
            }
        }
        assert_eq!(index as usize, config.num_people);
        assert_eq!(stream.remaining(), 0);
    }

    #[test]
    fn stream_is_seed_deterministic() {
        let (city, _) = setup();
        let config = PopulationConfig::small();
        let a = ResidentStream::new(&city, &config, 41);
        let b = ResidentStream::new(&city, &config, 41);
        let c = ResidentStream::new(&city, &config, 42);
        assert_eq!(a.resident(123), b.resident(123));
        assert_ne!(a.resident(123), c.resident(123));
    }

    #[test]
    fn streamed_generation_is_deterministic_and_records_population() {
        let (city, scenario) = setup();
        let mut config = PopulationConfig::small();
        config.num_people = 10_000;
        let a = generate_streamed(&city, &scenario, &config, 5, 64);
        let b = generate_streamed(&city, &scenario, &config, 5, 64);
        assert_eq!(a.dataset.num_people(), 64);
        assert_eq!(a.total_residents, 10_000);
        assert_eq!(a.dataset.people, b.dataset.people);
        assert_eq!(a.dataset.pings, b.dataset.pings);
        assert_eq!(a.true_rescues.len(), b.true_rescues.len());
    }

    #[test]
    fn sample_is_stride_stable_under_larger_cap() {
        // Doubling the cap keeps every previously sampled resident's trace
        // identical per global index: traces are keyed by global index, not
        // by sample position.
        let (city, scenario) = setup();
        let mut config = PopulationConfig::small();
        config.num_people = 1_000;
        let narrow = generate_streamed(&city, &scenario, &config, 5, 10);
        let wide = generate_streamed(&city, &scenario, &config, 5, 20);
        // Global stride 100 vs 50: narrow's k-th resident is wide's 2k-th.
        for k in 0..10usize {
            assert_eq!(
                narrow.dataset.people[k].home,
                wide.dataset.people[2 * k].home,
                "sampled resident {k} drifted with cap"
            );
        }
    }

    #[test]
    fn cap_beyond_population_materializes_everyone() {
        let (city, scenario) = setup();
        let mut config = PopulationConfig::small();
        config.num_people = 17;
        let out = generate_streamed(&city, &scenario, &config, 5, 1_000);
        assert_eq!(out.dataset.num_people(), 17);
        assert_eq!(out.total_residents, 17);
    }
}
