//! Vehicle flow rate measurement (the paper's Definition 2).
//!
//! Flow rate of a segment is the number of vehicles driving through it per
//! hour; a region's flow rate averages over its segments. Inferred
//! [`Trip`]s are routed over the network *as it existed at departure time*
//! (flooded segments are impassable) and every traversed segment's counter
//! for the departure hour is incremented. Trips that cannot be routed on the
//! damaged network are cancelled — exactly the mechanism that makes flow
//! collapse in flooded regions (Observation 2).

use crate::trips::Trip;
use mobirescue_disaster::scenario::DisasterScenario;
use mobirescue_roadnet::damage::NetworkCondition;
use mobirescue_roadnet::graph::{RoadNetwork, SegmentId};
use mobirescue_roadnet::planner::RoutePlanner;
use mobirescue_roadnet::pool;
use mobirescue_roadnet::regions::{RegionId, RegionPartition};
use serde::{Deserialize, Serialize};

/// Per-hour network conditions (G̃ at every hour), precomputed once.
///
/// Conditions may cover only a *window* of the scenario (see
/// [`HourlyConditions::compute_window`]): at metro scale a full 30-day
/// horizon over 100k+ segments costs gigabytes, while serving and
/// benchmarking only ever touch the hours around the storm.
#[derive(Debug, Clone)]
pub struct HourlyConditions {
    conditions: Vec<NetworkCondition>,
    /// First absolute scenario hour covered (0 for full-horizon builds).
    first_hour: u32,
}

impl HourlyConditions {
    /// Precomputes the condition of `net` for every hour of `scenario`.
    pub fn compute(net: &RoadNetwork, scenario: &DisasterScenario) -> Self {
        Self::compute_window(net, scenario, 0..scenario.total_hours())
    }

    /// Precomputes conditions for the absolute-hour window
    /// `window.start..window.end` only. `at` remains indexed by *absolute*
    /// scenario hour; hours outside the window panic.
    ///
    /// # Panics
    ///
    /// Panics when the window is empty or extends past the scenario.
    pub fn compute_window(
        net: &RoadNetwork,
        scenario: &DisasterScenario,
        window: std::ops::Range<u32>,
    ) -> Self {
        assert!(!window.is_empty(), "condition window must be non-empty");
        assert!(
            window.end <= scenario.total_hours(),
            "window {window:?} extends past the {}-hour scenario",
            scenario.total_hours()
        );
        let first_hour = window.start;
        let conditions = window.map(|h| scenario.network_condition(net, h)).collect();
        Self {
            conditions,
            first_hour,
        }
    }

    /// Builds from explicit per-hour conditions (synthetic damage schedules
    /// for tests and failure-injection studies), covering hours
    /// `0..conditions.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `conditions` is empty.
    pub fn from_conditions(conditions: Vec<NetworkCondition>) -> Self {
        assert!(
            !conditions.is_empty(),
            "need at least one hour of conditions"
        );
        Self {
            conditions,
            first_hour: 0,
        }
    }

    /// First absolute hour covered (0 for full-horizon builds).
    pub fn first_hour(&self) -> u32 {
        self.first_hour
    }

    /// One past the last absolute hour covered. Full-horizon builds cover
    /// `0..hours()`, windowed builds `first_hour()..hours()`.
    pub fn hours(&self) -> u32 {
        self.first_hour + self.conditions.len() as u32
    }

    /// The condition at absolute scenario `hour`.
    ///
    /// # Panics
    ///
    /// Panics if `hour` is outside the covered window.
    pub fn at(&self, hour: u32) -> &NetworkCondition {
        assert!(
            hour >= self.first_hour,
            "hour {hour} precedes the covered window starting at {}",
            self.first_hour
        );
        &self.conditions[(hour - self.first_hour) as usize]
    }
}

/// Flow counts per segment per hour.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowField {
    num_segments: usize,
    hours: u32,
    counts: Vec<u32>,
}

impl FlowField {
    /// An all-zero flow field.
    pub fn zeros(num_segments: usize, hours: u32) -> Self {
        Self {
            num_segments,
            hours,
            counts: vec![0; num_segments * hours as usize],
        }
    }

    /// Routes every trip and accumulates per-segment hourly flow.
    /// Unroutable trips (origin or destination cut off by flooding) are
    /// dropped.
    ///
    /// Trips are grouped by departure hour so each hour's damage condition
    /// is materialized into a flat cost snapshot exactly once (see
    /// [`RoutePlanner`]); within an hour the point queries fan out over
    /// the available cores. Results are deterministic: routes come back in
    /// input order and counts are merged by addition.
    pub fn from_trips(net: &RoadNetwork, trips: &[Trip], conditions: &HourlyConditions) -> Self {
        let hours = conditions.hours();
        let planner = RoutePlanner::new(net);
        let threads = pool::available_threads().clamp(1, 16);
        let mut by_hour: Vec<Vec<&Trip>> = vec![Vec::new(); hours as usize];
        for trip in trips {
            by_hour[trip.depart_hour().min(hours - 1) as usize].push(trip);
        }
        let mut field = Self::zeros(net.num_segments(), hours);
        for (hour, hour_trips) in by_hour.iter().enumerate() {
            if hour_trips.is_empty() {
                continue;
            }
            let cond = conditions.at(hour as u32);
            let routes = pool::parallel_map(threads, hour_trips, |_, trip| {
                planner.route(cond, trip.from, trip.to)
            });
            for route in routes.into_iter().flatten() {
                for sid in route.segments {
                    field.counts[sid.index() * hours as usize + hour] += 1;
                }
            }
        }
        field
    }

    /// Hours covered.
    pub fn hours(&self) -> u32 {
        self.hours
    }

    /// Vehicles through `seg` during `hour`.
    ///
    /// # Panics
    ///
    /// Panics if `seg` or `hour` is out of range.
    pub fn flow(&self, seg: SegmentId, hour: u32) -> u32 {
        assert!(hour < self.hours, "hour {hour} out of range");
        self.counts[seg.index() * self.hours as usize + hour as usize]
    }

    /// Average hourly flow of `seg` over the day range `days` (inclusive
    /// start, exclusive end).
    pub fn segment_daily_avg(&self, seg: SegmentId, days: std::ops::Range<u32>) -> f64 {
        let mut total = 0u64;
        let mut hours = 0u64;
        for day in days {
            for h in 0..24 {
                let hour = day * 24 + h;
                if hour < self.hours {
                    total += self.flow(seg, hour) as u64;
                    hours += 1;
                }
            }
        }
        if hours == 0 {
            0.0
        } else {
            total as f64 / hours as f64
        }
    }

    /// Region flow rate during one hour: average over the region's segments
    /// (Definition 2).
    pub fn region_flow(&self, partition: &RegionPartition, region: RegionId, hour: u32) -> f64 {
        let segs = partition.segments_in(region);
        if segs.is_empty() {
            return 0.0;
        }
        segs.iter().map(|&s| self.flow(s, hour) as f64).sum::<f64>() / segs.len() as f64
    }

    /// Region flow rate averaged over all 24 hours of `day`.
    pub fn region_daily_avg(&self, partition: &RegionPartition, region: RegionId, day: u32) -> f64 {
        (0..24)
            .map(|h| self.region_flow(partition, region, (day * 24 + h).min(self.hours - 1)))
            .sum::<f64>()
            / 24.0
    }

    /// Per-segment difference of average hourly flow between two day ranges
    /// (`|before − after|`), the statistic behind Figure 3.
    pub fn segment_flow_differences(
        &self,
        net: &RoadNetwork,
        before: std::ops::Range<u32>,
        after: std::ops::Range<u32>,
    ) -> Vec<f64> {
        net.segment_ids()
            .map(|s| {
                (self.segment_daily_avg(s, before.clone())
                    - self.segment_daily_avg(s, after.clone()))
                .abs()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::person::PersonId;
    use mobirescue_disaster::hurricane::Hurricane;
    use mobirescue_roadnet::generator::CityConfig;
    use mobirescue_roadnet::routing::Router;

    fn setup() -> (
        mobirescue_roadnet::generator::City,
        DisasterScenario,
        HourlyConditions,
    ) {
        let city = CityConfig::small().build(31);
        let scenario = DisasterScenario::new(&city, Hurricane::florence(), 31);
        let conds = HourlyConditions::compute(&city.network, &scenario);
        (city, scenario, conds)
    }

    #[test]
    fn hourly_conditions_cover_scenario() {
        let (city, scenario, conds) = setup();
        assert_eq!(conds.hours(), scenario.total_hours());
        assert_eq!(conds.at(0).operable_count(), city.network.num_segments());
    }

    #[test]
    fn trips_increment_route_segments() {
        let (city, _, conds) = setup();
        let from = mobirescue_roadnet::graph::LandmarkId(0);
        let to = city.depot;
        let trip = Trip {
            person: PersonId(0),
            depart_minute: 60,
            from,
            to,
        };
        let field = FlowField::from_trips(&city.network, &[trip], &conds);
        let router = Router::new(&city.network);
        let route = router.shortest_path(conds.at(1), from, to).unwrap();
        for sid in &route.segments {
            assert_eq!(field.flow(*sid, 1), 1);
        }
        // Total flow equals route length in segments.
        let total: u32 = city.network.segment_ids().map(|s| field.flow(s, 1)).sum();
        assert_eq!(total as usize, route.segments.len());
    }

    #[test]
    fn flow_during_flood_avoids_blocked_segments() {
        let (city, scenario, conds) = setup();
        let peak = scenario.hurricane().timeline.peak_hour() + 24;
        let cond = conds.at(peak);
        let from = mobirescue_roadnet::graph::LandmarkId(0);
        let to = mobirescue_roadnet::graph::LandmarkId((city.network.num_landmarks() - 1) as u32);
        let trip = Trip {
            person: PersonId(0),
            depart_minute: peak * 60,
            from,
            to,
        };
        let field = FlowField::from_trips(&city.network, &[trip], &conds);
        for sid in city.network.segment_ids() {
            if field.flow(sid, peak) > 0 {
                assert!(cond.is_operable(sid), "flow on blocked segment {sid}");
            }
        }
    }

    #[test]
    fn region_flow_averages_segments() {
        let (city, _, conds) = setup();
        let from = mobirescue_roadnet::graph::LandmarkId(0);
        let trip = Trip {
            person: PersonId(0),
            depart_minute: 0,
            from,
            to: city.depot,
        };
        let field = FlowField::from_trips(&city.network, &[trip], &conds);
        let mut manual_sum = 0.0;
        let mut by_region = 0.0;
        for r in city.regions.region_ids() {
            let segs = city.regions.segments_in(r);
            by_region += field.region_flow(&city.regions, r, 0) * segs.len() as f64;
        }
        for s in city.network.segment_ids() {
            manual_sum += field.flow(s, 0) as f64;
        }
        assert!((by_region - manual_sum).abs() < 1e-9);
    }

    #[test]
    fn daily_average_over_empty_range_is_zero() {
        let field = FlowField::zeros(10, 48);
        assert_eq!(field.segment_daily_avg(SegmentId(3), 1..1), 0.0);
    }
}
