//! People and their behavioural attributes.

use mobirescue_roadnet::geo::GeoPoint;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a person in the mobility dataset.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PersonId(pub u32);

impl PersonId {
    /// The person's index into dataset storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PersonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// How mobile a person is on a normal day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MobilityProfile {
    /// Commutes to a workplace every day and runs occasional errands.
    Commuter,
    /// Mostly stays home; occasional errands only.
    Homebody,
}

/// A tracked person: anonymous id plus home/work anchors.
///
/// The paper's dataset is anonymized cellphone GPS; the only per-person
/// structure it reveals (and that Section IV-C5's historical-position
/// fallback relies on) is home/work anchors and a movement pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Person {
    /// Anonymous identifier.
    pub id: PersonId,
    /// Home position.
    pub home: GeoPoint,
    /// Workplace position (equals `home` for [`MobilityProfile::Homebody`]).
    pub work: GeoPoint,
    /// Daily movement pattern.
    pub profile: MobilityProfile,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn person_id_formats_and_indexes() {
        assert_eq!(PersonId(7).to_string(), "P7");
        assert_eq!(PersonId(7).index(), 7);
    }
}
