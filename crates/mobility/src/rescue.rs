//! Hospital-delivery detection and rescued-person ground truth.
//!
//! Section III-B2: a person is *delivered to a hospital* when, starting from
//! their first appearance at one, they stay longer than a threshold (2 hours
//! in the paper); the person counts as *rescued* when their previous staying
//! position before the delivery lies in a flood zone. These labels are the
//! ground truth for the SVM (Section IV-B) and for Figures 4 and 6.

use crate::person::PersonId;
use crate::trace::{MobilityDataset, Trajectory};
use mobirescue_disaster::factors::FactorVector;
use mobirescue_disaster::scenario::DisasterScenario;
use mobirescue_roadnet::geo::GeoPoint;
use serde::{Deserialize, Serialize};

/// Default hospital catchment radius for detection, meters.
pub const DEFAULT_HOSPITAL_RADIUS_M: f64 = 300.0;

/// Default minimum stay to count as delivered, minutes (the paper's 2 h).
pub const DEFAULT_MIN_STAY_MINUTES: u32 = 120;

/// One detected hospital delivery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HospitalDelivery {
    /// Who was delivered.
    pub person: PersonId,
    /// Minute of the first ping inside the hospital catchment.
    pub arrival_minute: u32,
    /// Index of the hospital in the list passed to the detector.
    pub hospital_index: usize,
    /// The person's last position before arriving, if any ping preceded the
    /// arrival.
    pub previous_position: Option<GeoPoint>,
    /// Minute of that previous ping.
    pub previous_minute: Option<u32>,
}

/// A delivery confirmed to be a flood rescue: the previous staying position
/// was inside a flood zone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RescueRecord {
    /// Who was rescued.
    pub person: PersonId,
    /// Proxy for the rescue-request time: the last ping before delivery.
    pub request_minute: u32,
    /// Where the person was trapped.
    pub request_position: GeoPoint,
    /// Minute of hospital arrival.
    pub arrival_minute: u32,
    /// Index of the hospital in the detector's hospital list.
    pub hospital_index: usize,
}

impl RescueRecord {
    /// Day of the request.
    pub fn request_day(&self) -> u32 {
        self.request_minute / crate::trace::MINUTES_PER_DAY
    }
}

/// Detects hospital deliveries in every trajectory.
///
/// A delivery starts at the first ping within `radius_m` of any hospital and
/// holds if the person remains inside the catchment for at least
/// `min_stay_minutes` (judged by the first subsequent ping outside it, or
/// the last ping if none leaves). At most one delivery per person is
/// reported, matching the paper's "starting from a person's first
/// appearance in a hospital".
pub fn detect_deliveries(
    trajectories: &[Trajectory],
    hospitals: &[GeoPoint],
    radius_m: f64,
    min_stay_minutes: u32,
) -> Vec<HospitalDelivery> {
    let mut out = Vec::new();
    for traj in trajectories {
        let near = |p: GeoPoint| -> Option<usize> {
            hospitals
                .iter()
                .enumerate()
                .find(|(_, h)| h.distance_m(p) <= radius_m)
                .map(|(i, _)| i)
        };
        let pings = &traj.pings;
        for (i, ping) in pings.iter().enumerate() {
            let Some(hospital_index) = near(ping.position) else {
                continue;
            };
            // Find when the person leaves the catchment.
            let leave_minute = pings[i + 1..]
                .iter()
                .find(|p| near(p.position).is_none())
                .map(|p| p.minute)
                .or_else(|| pings.last().map(|p| p.minute))
                .unwrap_or(ping.minute);
            if leave_minute.saturating_sub(ping.minute) >= min_stay_minutes {
                out.push(HospitalDelivery {
                    person: traj.person,
                    arrival_minute: ping.minute,
                    hospital_index,
                    previous_position: (i > 0).then(|| pings[i - 1].position),
                    previous_minute: (i > 0).then(|| pings[i - 1].minute),
                });
            }
            break; // only the first hospital appearance per person
        }
    }
    out
}

/// Filters deliveries down to flood rescues: keep those whose previous
/// staying position was inside a flood zone at that time.
pub fn label_rescues(
    deliveries: &[HospitalDelivery],
    scenario: &DisasterScenario,
) -> Vec<RescueRecord> {
    deliveries
        .iter()
        .filter_map(|d| {
            let pos = d.previous_position?;
            let minute = d.previous_minute?;
            let hour = (minute / 60).min(scenario.total_hours() - 1);
            scenario.is_flooded(pos, hour).then_some(RescueRecord {
                person: d.person,
                request_minute: minute,
                request_position: pos,
                arrival_minute: d.arrival_minute,
                hospital_index: d.hospital_index,
            })
        })
        .collect()
}

/// A labelled training example for the rescue-decision classifier
/// (Equation 1's ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabeledExample {
    /// The person the example describes.
    pub person: PersonId,
    /// Sample time, minutes.
    pub minute: u32,
    /// Sample position.
    pub position: GeoPoint,
    /// Disaster-related factors at the position and time.
    pub factors: FactorVector,
    /// Whether the person needed rescue (the SVM's target).
    pub needs_rescue: bool,
}

/// Builds the SVM training set from a dataset and its rescue ground truth:
/// one positive example per rescue (at the trapped position/time) and one
/// negative example per never-rescued person.
///
/// Negatives are taken at each person's ping *closest to the disaster
/// peak*, matching the positives' time distribution — otherwise the
/// classifier can separate the classes on the storm's temporal intensity
/// alone and never learns the spatial factors (altitude) that
/// differentiate people during the peak.
pub fn training_examples(
    dataset: &MobilityDataset,
    scenario: &DisasterScenario,
    rescues: &[RescueRecord],
) -> Vec<LabeledExample> {
    let mut rescued = vec![false; dataset.num_people()];
    let mut out = Vec::new();
    for r in rescues {
        rescued[r.person.index()] = true;
        let hour = (r.request_minute / 60).min(scenario.total_hours() - 1);
        out.push(LabeledExample {
            person: r.person,
            minute: r.request_minute,
            position: r.request_position,
            factors: scenario.factors_at(r.request_position, hour),
            needs_rescue: true,
        });
    }
    // Negatives: for each non-rescued person, their ping nearest the
    // disaster peak (within an extended disaster window — flooding peaks
    // after the rain does).
    let tl = scenario.hurricane().timeline;
    let window =
        (tl.disaster_start_day * 24 * 60)..((tl.disaster_end_day + 2).min(tl.total_days) * 24 * 60);
    let peak_minute = tl.peak_hour() * 60 + 12 * 60;
    // Keep negatives within half a day of the peak: beyond that the storm's
    // own intensity separates the classes and the classifier never learns
    // the *spatial* factor (altitude) that distinguishes people at the
    // same moment.
    let max_offset = 12 * 60;
    let mut best: Vec<Option<(u32, GeoPoint)>> = vec![None; dataset.num_people()];
    for ping in &dataset.pings {
        if rescued[ping.person.index()]
            || !window.contains(&ping.minute)
            || ping.minute.abs_diff(peak_minute) > max_offset
        {
            continue;
        }
        let slot = &mut best[ping.person.index()];
        let closer =
            slot.is_none_or(|(m, _)| ping.minute.abs_diff(peak_minute) < m.abs_diff(peak_minute));
        if closer {
            *slot = Some((ping.minute, ping.position));
        }
    }
    for (i, slot) in best.iter().enumerate() {
        if let Some((minute, position)) = slot {
            let hour = (minute / 60).min(scenario.total_hours() - 1);
            out.push(LabeledExample {
                person: crate::person::PersonId(i as u32),
                minute: *minute,
                position: *position,
                factors: scenario.factors_at(*position, hour),
                needs_rescue: false,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, PopulationConfig};
    use crate::trace::GpsPing;
    use mobirescue_disaster::hurricane::Hurricane;
    use mobirescue_roadnet::generator::CityConfig;

    fn ping(minute: u32, pos: GeoPoint) -> GpsPing {
        GpsPing {
            person: PersonId(0),
            minute,
            position: pos,
            altitude_m: 0.0,
            speed_mps: 0.0,
        }
    }

    #[test]
    fn detects_a_long_stay() {
        let hospital = GeoPoint::new(35.2, -80.8);
        let away = hospital.offset_m(5_000.0, 0.0);
        let traj = Trajectory {
            person: PersonId(0),
            pings: vec![
                ping(0, away),
                ping(100, hospital),
                ping(180, hospital.offset_m(20.0, 0.0)),
                ping(300, away),
            ],
        };
        let ds = detect_deliveries(&[traj], &[hospital], 300.0, 120);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].arrival_minute, 100);
        assert_eq!(ds[0].previous_minute, Some(0));
        assert_eq!(ds[0].previous_position.unwrap(), away);
    }

    #[test]
    fn short_visit_is_not_a_delivery() {
        let hospital = GeoPoint::new(35.2, -80.8);
        let away = hospital.offset_m(5_000.0, 0.0);
        let traj = Trajectory {
            person: PersonId(0),
            pings: vec![ping(0, away), ping(100, hospital), ping(160, away)],
        };
        let ds = detect_deliveries(&[traj], &[hospital], 300.0, 120);
        assert!(ds.is_empty());
    }

    #[test]
    fn only_first_appearance_counts() {
        let hospital = GeoPoint::new(35.2, -80.8);
        let away = hospital.offset_m(5_000.0, 0.0);
        let traj = Trajectory {
            person: PersonId(0),
            pings: vec![
                ping(0, hospital),
                ping(200, hospital),
                ping(300, away),
                ping(400, hospital),
                ping(600, hospital),
            ],
        };
        let ds = detect_deliveries(&[traj], &[hospital], 300.0, 120);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].arrival_minute, 0);
        assert!(ds[0].previous_position.is_none());
    }

    #[test]
    fn end_to_end_detection_recovers_generated_rescues() {
        let city = CityConfig::small().build(55);
        let scenario = DisasterScenario::new(&city, Hurricane::florence(), 55);
        let out = generate(&city, &scenario, &PopulationConfig::small(), 55);
        let hospitals: Vec<GeoPoint> = city
            .hospitals
            .iter()
            .map(|&h| city.network.landmark(h).position)
            .collect();
        let trajs = out.dataset.trajectories();
        let deliveries = detect_deliveries(
            &trajs,
            &hospitals,
            DEFAULT_HOSPITAL_RADIUS_M,
            DEFAULT_MIN_STAY_MINUTES,
        );
        let rescues = label_rescues(&deliveries, &scenario);
        let truth = out.true_rescues.len();
        assert!(truth > 0);
        // The sparse-sampling pipeline cannot be perfect, but it must
        // recover a solid majority of true rescues.
        let detected_people: std::collections::HashSet<_> =
            rescues.iter().map(|r| r.person).collect();
        let hits = out
            .true_rescues
            .iter()
            .filter(|t| detected_people.contains(&t.person))
            .count();
        assert!(hits * 2 >= truth, "detected {hits}/{truth} true rescues");
    }

    #[test]
    fn training_examples_have_both_labels() {
        let city = CityConfig::small().build(56);
        let scenario = DisasterScenario::new(&city, Hurricane::florence(), 56);
        let out = generate(&city, &scenario, &PopulationConfig::small(), 56);
        let hospitals: Vec<GeoPoint> = city
            .hospitals
            .iter()
            .map(|&h| city.network.landmark(h).position)
            .collect();
        let trajs = out.dataset.trajectories();
        let deliveries = detect_deliveries(
            &trajs,
            &hospitals,
            DEFAULT_HOSPITAL_RADIUS_M,
            DEFAULT_MIN_STAY_MINUTES,
        );
        let rescues = label_rescues(&deliveries, &scenario);
        let examples = training_examples(&out.dataset, &scenario, &rescues);
        let pos = examples.iter().filter(|e| e.needs_rescue).count();
        let neg = examples.len() - pos;
        assert!(pos > 0, "no positive examples");
        assert!(neg > 0, "no negative examples");
        assert_eq!(pos, rescues.len());
        // At most one negative per person.
        let mut seen = std::collections::HashSet::new();
        for e in examples.iter().filter(|e| !e.needs_rescue) {
            assert!(seen.insert(e.person), "duplicate negative for {}", e.person);
        }
    }
}
