//! Human-mobility substrate for the MobiRescue reproduction.
//!
//! The paper's foundation is a proprietary city-scale GPS dataset (8,590
//! people around Hurricane Florence). This crate replaces it with a
//! synthetic dataset of identical schema plus the full Section-III analysis
//! pipeline, which consumes only the GPS pings:
//!
//! * [`person`] / [`trace`] — dataset schema (people, pings, trajectories);
//! * [`generator`] — behavioural population synthesis (commutes, sheltering,
//!   trapping, hospital deliveries);
//! * [`cleaning`] — bounding-box and redundancy filtering (Figure 7 stage 1);
//! * [`map_match`] — grid-indexed snapping of positions to landmarks and
//!   segments;
//! * [`trips`] / [`flow`] — trip inference and vehicle flow rate
//!   (Definition 2, Figures 2/3/5);
//! * [`rescue`] — hospital-delivery detection, rescued labelling, and SVM
//!   training examples (Section III-B2, Figures 4/6);
//! * [`stats`] — Pearson correlation (Table I) and empirical CDFs.

#![warn(missing_docs)]

pub mod cleaning;
pub mod flow;
pub mod generator;
pub mod map_match;
pub mod person;
pub mod rescue;
pub mod stats;
pub mod stream;
pub mod trace;
pub mod trips;

pub use cleaning::{clean, CleaningConfig, CleaningReport};
pub use flow::{FlowField, HourlyConditions};
pub use generator::{generate, GenerationOutput, PopulationConfig, TrueRescue};
pub use map_match::MapMatcher;
pub use person::{MobilityProfile, Person, PersonId};
pub use rescue::{
    detect_deliveries, label_rescues, training_examples, HospitalDelivery, LabeledExample,
    RescueRecord,
};
pub use stats::{mean, pearson, std_dev, Cdf};
pub use stream::{generate_streamed, ResidentStream};
pub use trace::{GpsPing, MobilityDataset, Trajectory, MINUTES_PER_DAY};
pub use trips::{extract_trips, Trip, DEFAULT_TRIP_THRESHOLD_M};
