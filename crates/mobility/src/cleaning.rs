//! Data cleaning — the first stage of the MobiRescue framework (Figure 7).
//!
//! The paper filters out positions outside the city of interest and
//! redundant positions before deriving trajectories. [`clean`] applies both
//! filters to a raw ping stream.

use crate::trace::GpsPing;
use mobirescue_roadnet::geo::BoundingBox;

/// Two consecutive pings of the same person closer than this (in meters and
/// minutes) are considered redundant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CleaningConfig {
    /// Positions outside this box are dropped.
    pub bounds: BoundingBox,
    /// A ping within this distance of the previous kept ping of the same
    /// person *and* within `redundant_minutes` of it is dropped.
    pub redundant_distance_m: f64,
    /// See `redundant_distance_m`.
    pub redundant_minutes: u32,
}

impl CleaningConfig {
    /// Standard cleaning: the given city bounds, 15 m / 10 min redundancy.
    pub fn for_bounds(bounds: BoundingBox) -> Self {
        Self {
            bounds,
            redundant_distance_m: 15.0,
            redundant_minutes: 10,
        }
    }
}

/// Statistics of one cleaning run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CleaningReport {
    /// Pings kept.
    pub kept: usize,
    /// Pings dropped for being out of bounds.
    pub out_of_bounds: usize,
    /// Pings dropped as redundant.
    pub redundant: usize,
}

/// Cleans a ping stream sorted by `(person, minute)`, returning the kept
/// pings (same order) and a report.
///
/// # Panics
///
/// Panics (debug builds) if the input is not sorted by `(person, minute)`.
pub fn clean(pings: &[GpsPing], config: &CleaningConfig) -> (Vec<GpsPing>, CleaningReport) {
    debug_assert!(
        pings
            .windows(2)
            .all(|w| (w[0].person, w[0].minute) <= (w[1].person, w[1].minute)),
        "pings must be sorted by (person, minute)"
    );
    let mut kept: Vec<GpsPing> = Vec::with_capacity(pings.len());
    let mut report = CleaningReport::default();
    for ping in pings {
        if !config.bounds.contains(ping.position) {
            report.out_of_bounds += 1;
            continue;
        }
        if let Some(prev) = kept.last() {
            if prev.person == ping.person
                && ping.minute.saturating_sub(prev.minute) <= config.redundant_minutes
                && prev.position.distance_m(ping.position) <= config.redundant_distance_m
            {
                report.redundant += 1;
                continue;
            }
        }
        kept.push(*ping);
        report.kept += 1;
    }
    (kept, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::person::PersonId;
    use mobirescue_roadnet::geo::GeoPoint;

    fn ping(person: u32, minute: u32, pos: GeoPoint) -> GpsPing {
        GpsPing {
            person: PersonId(person),
            minute,
            position: pos,
            altitude_m: 0.0,
            speed_mps: 0.0,
        }
    }

    fn config() -> CleaningConfig {
        CleaningConfig::for_bounds(BoundingBox::new(
            GeoPoint::new(35.0, -81.0),
            GeoPoint::new(36.0, -80.0),
        ))
    }

    #[test]
    fn out_of_bounds_pings_dropped() {
        let inside = GeoPoint::new(35.5, -80.5);
        let outside = GeoPoint::new(40.0, -80.5);
        let pings = vec![
            ping(0, 0, inside),
            ping(0, 100, outside),
            ping(0, 200, inside),
        ];
        let (kept, report) = clean(&pings, &config());
        assert_eq!(kept.len(), 2);
        assert_eq!(report.out_of_bounds, 1);
        assert_eq!(report.kept, 2);
    }

    #[test]
    fn redundant_pings_collapsed() {
        let p = GeoPoint::new(35.5, -80.5);
        let near = p.offset_m(5.0, 5.0);
        let pings = vec![ping(0, 0, p), ping(0, 5, near), ping(0, 300, near)];
        let (kept, report) = clean(&pings, &config());
        assert_eq!(kept.len(), 2, "only the 5-minute duplicate is dropped");
        assert_eq!(report.redundant, 1);
    }

    #[test]
    fn redundancy_does_not_cross_people() {
        let p = GeoPoint::new(35.5, -80.5);
        let pings = vec![ping(0, 0, p), ping(1, 2, p)];
        let (kept, report) = clean(&pings, &config());
        assert_eq!(kept.len(), 2);
        assert_eq!(report.redundant, 0);
    }

    #[test]
    fn distant_same_time_pings_kept() {
        let p = GeoPoint::new(35.5, -80.5);
        let far = p.offset_m(500.0, 0.0);
        let pings = vec![ping(0, 0, p), ping(0, 2, far)];
        let (kept, _) = clean(&pings, &config());
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn empty_input_is_fine() {
        let (kept, report) = clean(&[], &config());
        assert!(kept.is_empty());
        assert_eq!(report, CleaningReport::default());
    }
}
