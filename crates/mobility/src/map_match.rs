//! Map matching: snapping GPS positions to landmarks and road segments.
//!
//! The paper derives "trajectories in landmarks" from raw GPS (Figure 7,
//! stage 1) and counts people per road segment (Equation 2). The
//! [`MapMatcher`] does both lookups with a spatial grid index so matching
//! millions of pings stays cheap.

use mobirescue_roadnet::geo::GeoPoint;
use mobirescue_roadnet::graph::{LandmarkId, RoadNetwork, SegmentId};

/// Grid-indexed nearest-landmark / nearest-segment lookup.
///
/// # Examples
///
/// ```
/// use mobirescue_mobility::map_match::MapMatcher;
/// use mobirescue_roadnet::generator::CityConfig;
///
/// let city = CityConfig::small().build(1);
/// let matcher = MapMatcher::new(&city.network);
/// let lm = matcher.nearest_landmark(&city.network, city.center);
/// assert_eq!(lm, city.network.nearest_landmark(city.center).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct MapMatcher {
    origin: GeoPoint,
    cell_m: f64,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<LandmarkId>>,
}

impl MapMatcher {
    /// Builds the index over `net` with ~800 m cells.
    ///
    /// # Panics
    ///
    /// Panics on an empty network.
    pub fn new(net: &RoadNetwork) -> Self {
        let bbox = net
            .bounding_box()
            .expect("network must be non-empty")
            .expanded_m(100.0);
        let origin = bbox.south_west;
        let (width_m, height_m) = bbox.north_east.local_xy_m(origin);
        let cell_m = 800.0;
        let cols = (width_m / cell_m).ceil().max(1.0) as usize;
        let rows = (height_m / cell_m).ceil().max(1.0) as usize;
        let mut buckets = vec![Vec::new(); cols * rows];
        for lm in net.landmarks() {
            let (x, y) = lm.position.local_xy_m(origin);
            let c = ((x / cell_m) as isize).clamp(0, cols as isize - 1) as usize;
            let r = ((y / cell_m) as isize).clamp(0, rows as isize - 1) as usize;
            buckets[r * cols + c].push(lm.id);
        }
        Self {
            origin,
            cell_m,
            cols,
            rows,
            buckets,
        }
    }

    fn cell_of(&self, p: GeoPoint) -> (isize, isize) {
        let (x, y) = p.local_xy_m(self.origin);
        (
            ((x / self.cell_m) as isize).clamp(0, self.cols as isize - 1),
            ((y / self.cell_m) as isize).clamp(0, self.rows as isize - 1),
        )
    }

    /// The landmark nearest to `p`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not the network the index was built from (debug
    /// assertion) or the network is empty.
    pub fn nearest_landmark(&self, net: &RoadNetwork, p: GeoPoint) -> LandmarkId {
        debug_assert_eq!(
            net.num_landmarks(),
            self.buckets.iter().map(Vec::len).sum::<usize>(),
            "index/network mismatch"
        );
        let (c0, r0) = self.cell_of(p);
        let mut best: Option<(f64, LandmarkId)> = None;
        // Expand rings until a hit is found, then one extra ring to be safe
        // against cell-boundary effects.
        let max_ring = self.cols.max(self.rows) as isize;
        let mut found_ring: Option<isize> = None;
        for ring in 0..=max_ring {
            if let Some(fr) = found_ring {
                if ring > fr + 1 {
                    break;
                }
            }
            let mut any = false;
            for dr in -ring..=ring {
                for dc in -ring..=ring {
                    if dr.abs() != ring && dc.abs() != ring {
                        continue; // only the ring boundary
                    }
                    let r = r0 + dr;
                    let c = c0 + dc;
                    if r < 0 || c < 0 || r >= self.rows as isize || c >= self.cols as isize {
                        continue;
                    }
                    for &lm in &self.buckets[r as usize * self.cols + c as usize] {
                        any = true;
                        let d = net.landmark(lm).position.distance_m(p);
                        if best.is_none_or(|(bd, _)| d < bd) {
                            best = Some((d, lm));
                        }
                    }
                }
            }
            if any && found_ring.is_none() {
                found_ring = Some(ring);
            }
        }
        best.expect("non-empty network always yields a match").1
    }

    /// The segment whose midpoint is nearest to `p`, searched among the
    /// segments incident to the nearest landmarks.
    ///
    /// # Panics
    ///
    /// Panics if the network has no segments.
    pub fn nearest_segment(&self, net: &RoadNetwork, p: GeoPoint) -> SegmentId {
        assert!(net.num_segments() > 0, "network has no segments");
        let lm = self.nearest_landmark(net, p);
        let mut best: Option<(f64, SegmentId)> = None;
        let mut consider = |sid: SegmentId| {
            let d = net.segment_midpoint(sid).distance_m(p);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, sid));
            }
        };
        for &sid in net.out_segments(lm) {
            consider(sid);
            // Also the neighbours' incident segments, one hop out.
            let nb = net.segment(sid).to;
            for &s2 in net.out_segments(nb) {
                consider(s2);
            }
        }
        for &sid in net.in_segments(lm) {
            consider(sid);
        }
        best.expect("landmark has incident segments in a connected network")
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobirescue_roadnet::generator::CityConfig;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn matches_brute_force_nearest_landmark() {
        let city = CityConfig::small().build(3);
        let matcher = MapMatcher::new(&city.network);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let p = city.center.offset_m(
                rng.random_range(-5_000.0..5_000.0),
                rng.random_range(-5_000.0..5_000.0),
            );
            let fast = matcher.nearest_landmark(&city.network, p);
            let brute = city.network.nearest_landmark(p).unwrap();
            let df = city.network.landmark(fast).position.distance_m(p);
            let db = city.network.landmark(brute).position.distance_m(p);
            assert!(
                (df - db).abs() < 1e-6,
                "grid match {fast} at {df} m vs brute {brute} at {db} m"
            );
        }
    }

    #[test]
    fn nearest_segment_touches_nearby_landmark() {
        let city = CityConfig::small().build(4);
        let matcher = MapMatcher::new(&city.network);
        let p = city.center.offset_m(250.0, 100.0);
        let sid = matcher.nearest_segment(&city.network, p);
        let d = city.network.segment_midpoint(sid).distance_m(p);
        assert!(d < 800.0, "matched segment {d} m away");
    }

    #[test]
    fn points_outside_bbox_still_match() {
        let city = CityConfig::small().build(5);
        let matcher = MapMatcher::new(&city.network);
        let far = city.center.offset_m(50_000.0, 50_000.0);
        let lm = matcher.nearest_landmark(&city.network, far);
        let brute = city.network.nearest_landmark(far).unwrap();
        assert_eq!(lm, brute);
    }
}
