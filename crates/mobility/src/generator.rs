//! Synthetic population and GPS-trace generation.
//!
//! The paper's dataset — 8,590 people tracked at 0.5–2 hour intervals for 15
//! days before and after Hurricane Florence — is proprietary (X-Mode). This
//! generator synthesizes a dataset with the same schema and the behavioural
//! structure the paper's analysis detects:
//!
//! * normal days: commutes and errands (vehicle trips → flow rate);
//! * disaster days: people shelter as the storm intensifies (flow collapses,
//!   Figure 5), and people whose location floods become *trapped* — they
//!   stop moving, implicitly issue a rescue request, and some time later are
//!   carried to the nearest hospital where they stay for hours (the signal
//!   Figures 4 and 6 and the SVM training labels are mined from);
//! * after the disaster: movement resumes where roads allow.
//!
//! Everything downstream (flow-rate measurement, hospital-delivery
//! detection, rescued labelling) consumes only the generated [`GpsPing`]s —
//! the generator's internal truth is exposed separately strictly for
//! validation.

use crate::person::{MobilityProfile, Person, PersonId};
use crate::trace::{GpsPing, MobilityDataset, MINUTES_PER_DAY};
use mobirescue_disaster::scenario::DisasterScenario;
use mobirescue_roadnet::generator::City;
use mobirescue_roadnet::geo::GeoPoint;
use mobirescue_roadnet::graph::LandmarkId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of tracked people (the paper's dataset has 8,590).
    pub num_people: usize,
    /// Minimum GPS sampling interval, minutes.
    pub ping_interval_min: u32,
    /// Maximum GPS sampling interval, minutes.
    pub ping_interval_max: u32,
    /// GPS position noise (uniform radius), meters.
    pub gps_noise_m: f64,
    /// Fraction of people who commute daily.
    pub commuter_fraction: f64,
    /// Expected errand trips per person per normal day.
    pub errands_per_day: f64,
    /// Probability that a person in *shallow* flooding becomes trapped
    /// rather than self-evacuating. People caught by deep water (≥ 0.45 m)
    /// are always trapped — self-evacuation stops being an option, which
    /// is also what makes the trapped population factor-separable from the
    /// evacuated one (they sit at the lowest altitudes).
    pub trap_probability: f64,
}

impl PopulationConfig {
    /// Paper-scale population: 8,590 people.
    pub fn charlotte_like() -> Self {
        Self {
            num_people: 8_590,
            ping_interval_min: 30,
            ping_interval_max: 120,
            gps_noise_m: 25.0,
            commuter_fraction: 0.65,
            errands_per_day: 0.8,
            trap_probability: 0.25,
        }
    }

    /// Small population for tests and quickstarts.
    pub fn small() -> Self {
        Self {
            num_people: 300,
            ..Self::charlotte_like()
        }
    }

    /// Metro-scale population: two million residents. Populations this
    /// size are generated through [`crate::stream`] (chunked, per-resident
    /// seeded) rather than materialized wholesale.
    pub fn metro() -> Self {
        Self {
            num_people: 2_000_000,
            ..Self::charlotte_like()
        }
    }
}

/// Generator-internal truth about one trapped-and-rescued person, exposed
/// for validating the detection pipeline (never consumed by MobiRescue
/// itself).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrueRescue {
    /// Who was trapped.
    pub person: PersonId,
    /// Minute the person became trapped (= implicit rescue request time).
    pub trapped_minute: u32,
    /// Where they were trapped.
    pub position: GeoPoint,
    /// Minute they were delivered to hospital.
    pub rescue_minute: u32,
    /// Hospital landmark they were delivered to.
    pub hospital: LandmarkId,
}

/// Output of a generation run: the dataset plus generator truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenerationOutput {
    /// The synthesized dataset (people + pings).
    pub dataset: MobilityDataset,
    /// True trapped/rescue events, for validation only.
    pub true_rescues: Vec<TrueRescue>,
    /// Residents the generating configuration describes. Equal to
    /// `dataset.num_people()` for fully materialized runs; larger when the
    /// dataset is a deterministic sample of a streamed metro-scale
    /// population (see [`crate::stream::generate_streamed`]).
    pub total_residents: usize,
}

/// An anchor timeline: the position a person occupies from each minute on.
#[derive(Debug, Clone, Default)]
struct AnchorTimeline {
    /// `(minute, position)`, sorted by minute; position holds until the next
    /// entry.
    events: Vec<(u32, GeoPoint)>,
}

impl AnchorTimeline {
    fn push(&mut self, minute: u32, position: GeoPoint) {
        // Keep events sorted; out-of-order inserts are rare (late-night
        // errands spilling past midnight) but must not corrupt lookups.
        let idx = self.events.partition_point(|&(m, _)| m <= minute);
        self.events.insert(idx, (minute, position));
    }

    fn at(&self, minute: u32) -> GeoPoint {
        let idx = self.events.partition_point(|&(m, _)| m <= minute);
        self.events[idx.saturating_sub(1)].1
    }
}

/// Generates the synthetic dataset for `city` under `scenario`,
/// deterministic in `seed`.
///
/// # Panics
///
/// Panics if `config.num_people == 0`, the ping interval is empty, or the
/// city has no hospitals.
pub fn generate(
    city: &City,
    scenario: &DisasterScenario,
    config: &PopulationConfig,
    seed: u64,
) -> GenerationOutput {
    assert!(config.num_people > 0, "population must be non-empty");
    assert!(
        0 < config.ping_interval_min && config.ping_interval_min <= config.ping_interval_max,
        "ping interval must be a non-empty range"
    );
    assert!(!city.hospitals.is_empty(), "city must have hospitals");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6d6f_6269_6c69_7479);
    let people = sample_people(city, config, &mut rng);
    let hospital_pos: Vec<GeoPoint> = city
        .hospitals
        .iter()
        .map(|&h| city.network.landmark(h).position)
        .collect();
    // High-ground evacuation spots: the least flooded hospitals suffice.
    let mut pings = Vec::new();
    let mut true_rescues = Vec::new();

    for person in &people {
        simulate_person(
            person,
            city,
            scenario,
            config,
            &hospital_pos,
            &mut rng,
            &mut pings,
            &mut true_rescues,
        );
    }

    GenerationOutput {
        dataset: MobilityDataset { people, pings },
        true_rescues,
        total_residents: config.num_people,
    }
}

/// Simulates one person's full-scenario behaviour — trips, sheltering,
/// trapping, rescue — appending their GPS pings and any true-rescue event.
/// Factored out of [`generate`] verbatim so the streaming generator
/// ([`crate::stream`]) can drive it with per-resident RNGs; the RNG call
/// sequence is exactly the original's.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_person(
    person: &Person,
    city: &City,
    scenario: &DisasterScenario,
    config: &PopulationConfig,
    hospital_pos: &[GeoPoint],
    rng: &mut StdRng,
    pings: &mut Vec<GpsPing>,
    true_rescues: &mut Vec<TrueRescue>,
) {
    let total_minutes = scenario.total_hours() * 60;
    let total_days = scenario.total_hours() / 24;
    {
        let mut timeline = AnchorTimeline::default();
        timeline.push(0, person.home);
        let mut trapped: Option<u32> = None;
        let mut evacuated = false;
        let mut done_with_disaster = false;

        for day in 0..total_days {
            let day_start = day * MINUTES_PER_DAY;
            // Hourly flood check at the current anchor.
            if !done_with_disaster {
                for h in 0..24 {
                    let minute = day_start + h * 60;
                    if minute >= total_minutes {
                        break;
                    }
                    let hour = minute / 60;
                    let pos = timeline.at(minute);
                    if trapped.is_none() && !evacuated && scenario.is_flooded(pos, hour) {
                        let depth = scenario.flood().depth_m(pos, hour);
                        let trap_p = if depth >= 0.45 {
                            1.0
                        } else {
                            config.trap_probability
                        };
                        if rng.random_bool(trap_p) {
                            // Trapped: stuck until rescued to the nearest
                            // hospital, where they stay for hours.
                            let trapped_minute = minute + rng.random_range(0..50);
                            let rescue_minute =
                                (trapped_minute + rng.random_range(90..700)).min(total_minutes - 1);
                            let (h_idx, _) = nearest_hospital(hospital_pos, pos);
                            timeline.push(rescue_minute, hospital_pos[h_idx]);
                            let leave = rescue_minute + rng.random_range(240..620);
                            if leave < total_minutes {
                                // Go home only if home has dried out.
                                let home_ok = !scenario.is_flooded(
                                    person.home,
                                    (leave / 60).min(scenario.total_hours() - 1),
                                );
                                if home_ok {
                                    timeline.push(leave, person.home);
                                }
                            }
                            trapped = Some(trapped_minute);
                            true_rescues.push(TrueRescue {
                                person: person.id,
                                trapped_minute,
                                position: pos,
                                rescue_minute,
                                hospital: city.hospitals[h_idx],
                            });
                        } else {
                            // Self-evacuation to a shelter on high ground:
                            // the hospital area with the highest terrain
                            // (shelters are sited above the flood line).
                            let minute = minute + rng.random_range(0..40);
                            let h_idx = hospital_pos
                                .iter()
                                .enumerate()
                                .max_by(|a, b| {
                                    let aa = scenario.terrain().altitude_m(*a.1);
                                    let ab = scenario.terrain().altitude_m(*b.1);
                                    aa.partial_cmp(&ab).expect("altitudes are never NaN")
                                })
                                .map(|(i, _)| i)
                                .expect("city has hospitals");
                            let shelter = hospital_pos[h_idx].offset_m(
                                rng.random_range(-400.0..400.0),
                                rng.random_range(-400.0..400.0),
                            );
                            timeline.push(minute, shelter);
                            evacuated = true;
                        }
                        done_with_disaster = true;
                        break;
                    }
                }
            }

            if trapped.is_some() || evacuated {
                continue; // no routine trips once displaced
            }

            // Sheltering: as the storm intensifies people stay home.
            let midday_intensity = scenario
                .hurricane()
                .timeline
                .intensity((day_start / 60 + 12).min(scenario.total_hours() - 1));
            if midday_intensity > 0.25 && rng.random_bool((midday_intensity * 1.2).min(0.97)) {
                continue;
            }

            // Normal-day routine.
            let mut home_again = day_start + 540; // earliest errand start
            if person.profile == MobilityProfile::Commuter {
                let depart = day_start + rng.random_range(420..560);
                let travel = est_travel_minutes(person.home, person.work);
                timeline.push(depart + travel, person.work);
                let back = day_start + rng.random_range(960..1140);
                if back + travel < total_minutes {
                    timeline.push(back + travel, person.home);
                    home_again = back + travel;
                }
            }
            if rng.random_bool(config.errands_per_day.clamp(0.0, 1.0)) {
                let start = home_again + rng.random_range(20..120);
                let target = random_landmark_pos(city, rng);
                let travel = est_travel_minutes(person.home, target);
                let stay = rng.random_range(25..90);
                let end = start + travel + stay + travel;
                if end < (day_start + MINUTES_PER_DAY).min(total_minutes) {
                    timeline.push(start + travel, target);
                    timeline.push(end, person.home);
                }
            }
        }

        // Sample GPS pings along the anchor timeline.
        let mut t = rng.random_range(0..config.ping_interval_max);
        while t < total_minutes {
            let anchor = timeline.at(t);
            let position = anchor.offset_m(
                rng.random_range(-config.gps_noise_m..=config.gps_noise_m),
                rng.random_range(-config.gps_noise_m..=config.gps_noise_m),
            );
            let altitude_m = scenario.terrain().altitude_m(position) + rng.random_range(-3.0..3.0);
            pings.push(GpsPing {
                person: person.id,
                minute: t,
                position,
                altitude_m,
                speed_mps: 0.0,
            });
            t += rng.random_range(config.ping_interval_min..=config.ping_interval_max);
        }
    }
}

/// Straight-line travel estimate at 8 m/s average urban speed, minutes.
fn est_travel_minutes(from: GeoPoint, to: GeoPoint) -> u32 {
    (from.distance_m(to) / 8.0 / 60.0).ceil() as u32
}

fn nearest_hospital(hospitals: &[GeoPoint], p: GeoPoint) -> (usize, f64) {
    hospitals
        .iter()
        .enumerate()
        .map(|(i, h)| (i, h.distance_m(p)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are never NaN"))
        .expect("city has hospitals")
}

fn random_landmark_pos(city: &City, rng: &mut StdRng) -> GeoPoint {
    let n = city.network.num_landmarks() as u32;
    city.network
        .landmark(LandmarkId(rng.random_range(0..n)))
        .position
}

/// Samples homes (denser downtown), workplaces (mostly downtown) and
/// profiles.
fn sample_people(city: &City, config: &PopulationConfig, rng: &mut StdRng) -> Vec<Person> {
    let landmarks: Vec<GeoPoint> = city.network.landmarks().map(|lm| lm.position).collect();
    (0..config.num_people as u32)
        .map(|i| sample_person(city, config, &landmarks, PersonId(i), rng))
        .collect()
}

/// Downtown-weighted landmark sampling by rejection.
fn weighted_pick(
    city: &City,
    landmarks: &[GeoPoint],
    rng: &mut StdRng,
    downtown_bias: f64,
) -> GeoPoint {
    loop {
        let p = landmarks[rng.random_range(0..landmarks.len())];
        let (x, y) = p.local_xy_m(city.center);
        let r2 = x * x + y * y;
        let w = 1.0 - downtown_bias + downtown_bias * (-r2 / (2.0 * 4_000.0_f64 * 4_000.0)).exp();
        if rng.random_bool(w.clamp(0.02, 1.0)) {
            return p;
        }
    }
}

/// Samples a single person's home, work, and profile. Factored out of
/// [`sample_people`] so the streaming generator ([`crate::stream`]) can
/// materialize any resident independently with a per-resident RNG; the RNG
/// call sequence matches the original batch sampler exactly.
pub(crate) fn sample_person(
    city: &City,
    config: &PopulationConfig,
    landmarks: &[GeoPoint],
    id: PersonId,
    rng: &mut StdRng,
) -> Person {
    let home = weighted_pick(city, landmarks, rng, 0.55).offset_m(
        rng.random_range(-200.0..200.0),
        rng.random_range(-200.0..200.0),
    );
    let profile = if rng.random_bool(config.commuter_fraction) {
        MobilityProfile::Commuter
    } else {
        MobilityProfile::Homebody
    };
    let work = if profile == MobilityProfile::Commuter {
        weighted_pick(city, landmarks, rng, 0.85).offset_m(
            rng.random_range(-150.0..150.0),
            rng.random_range(-150.0..150.0),
        )
    } else {
        home
    };
    Person {
        id,
        home,
        work,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobirescue_disaster::hurricane::Hurricane;
    use mobirescue_roadnet::generator::CityConfig;

    fn generate_small() -> (City, DisasterScenario, GenerationOutput) {
        let city = CityConfig::small().build(77);
        let scenario = DisasterScenario::new(&city, Hurricane::florence(), 77);
        let out = generate(&city, &scenario, &PopulationConfig::small(), 77);
        (city, scenario, out)
    }

    #[test]
    fn generates_requested_population() {
        let (_, _, out) = generate_small();
        assert_eq!(out.dataset.num_people(), 300);
        assert!(!out.dataset.pings.is_empty());
    }

    #[test]
    fn pings_sorted_by_person_then_minute() {
        let (_, _, out) = generate_small();
        assert!(out
            .dataset
            .pings
            .windows(2)
            .all(|w| (w[0].person, w[0].minute) <= (w[1].person, w[1].minute)));
    }

    #[test]
    fn ping_intervals_respect_config() {
        let (_, _, out) = generate_small();
        for traj in out.dataset.trajectories() {
            for w in traj.pings.windows(2) {
                let dt = w[1].minute - w[0].minute;
                assert!((30..=120).contains(&dt), "interval {dt}");
            }
        }
    }

    #[test]
    fn some_people_get_trapped_and_rescued() {
        let (_, scenario, out) = generate_small();
        assert!(
            out.true_rescues.len() > 5,
            "expected a real rescue population, got {}",
            out.true_rescues.len()
        );
        let tl = scenario.hurricane().timeline;
        for r in &out.true_rescues {
            assert!(r.rescue_minute > r.trapped_minute);
            let day = r.trapped_minute / MINUTES_PER_DAY;
            assert!(
                day + 1 >= tl.disaster_start_day && day <= tl.disaster_end_day + 3,
                "trapped on day {day} outside the disaster window"
            );
        }
    }

    #[test]
    fn trapped_people_ping_from_hospital_after_rescue() {
        let (city, _, out) = generate_small();
        let trajs = out.dataset.trajectories();
        let mut verified = 0;
        for r in &out.true_rescues {
            let hospital = city.network.landmark(r.hospital).position;
            let at_hospital = trajs[r.person.index()]
                .pings
                .iter()
                .filter(|p| p.minute >= r.rescue_minute && p.minute < r.rescue_minute + 240)
                .filter(|p| p.position.distance_m(hospital) < 200.0)
                .count();
            if at_hospital >= 1 {
                verified += 1;
            }
        }
        assert!(
            verified * 10 >= out.true_rescues.len() * 7,
            "only {verified}/{} rescues visible in pings",
            out.true_rescues.len()
        );
    }

    #[test]
    fn movement_drops_during_disaster() {
        let (_, scenario, out) = generate_small();
        let tl = scenario.hurricane().timeline;
        // Count "moved > 400 m between consecutive pings" events per day as
        // a cheap movement proxy.
        let mut moves = vec![0usize; 30];
        for traj in out.dataset.trajectories() {
            for w in traj.pings.windows(2) {
                if w[0].position.distance_m(w[1].position) > 400.0 {
                    moves[(w[1].minute / MINUTES_PER_DAY) as usize] += 1;
                }
            }
        }
        let before: f64 = (5..10).map(|d| moves[d] as f64).sum::<f64>() / 5.0;
        let peak_day = (tl.peak_hour() / 24) as usize;
        let during = moves[peak_day] as f64;
        assert!(
            during < before * 0.5,
            "movement should collapse during the storm: before {before}, during {during}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let city = CityConfig::small().build(5);
        let scenario = DisasterScenario::new(&city, Hurricane::florence(), 5);
        let a = generate(&city, &scenario, &PopulationConfig::small(), 9);
        let b = generate(&city, &scenario, &PopulationConfig::small(), 9);
        assert_eq!(a.dataset.pings.len(), b.dataset.pings.len());
        assert_eq!(a.dataset.pings[100], b.dataset.pings[100]);
        assert_eq!(a.true_rescues, b.true_rescues);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn empty_population_rejected() {
        let city = CityConfig::small().build(5);
        let scenario = DisasterScenario::new(&city, Hurricane::florence(), 5);
        let mut cfg = PopulationConfig::small();
        cfg.num_people = 0;
        let _ = generate(&city, &scenario, &cfg, 0);
    }
}
