//! GPS pings, trajectories and the mobility dataset container.
//!
//! The paper's dataset schema (Section III-A): per-user GPS samples at 0.5–2
//! hour intervals carrying timestamp, latitude, longitude, altitude and
//! speed, with an anonymous user id. [`GpsPing`] reproduces that schema;
//! time is minutes since the scenario start.

use crate::person::{Person, PersonId};
use mobirescue_roadnet::geo::GeoPoint;
use serde::{Deserialize, Serialize};

/// Minutes per simulated day.
pub const MINUTES_PER_DAY: u32 = 24 * 60;

/// One GPS sample of one person — the paper's dataset row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsPing {
    /// The sampled person.
    pub person: PersonId,
    /// Minutes since scenario start.
    pub minute: u32,
    /// Sampled position.
    pub position: GeoPoint,
    /// Altimeter reading, meters.
    pub altitude_m: f64,
    /// Instantaneous speed, meters per second.
    pub speed_mps: f64,
}

impl GpsPing {
    /// Hour (since scenario start) containing this ping.
    pub fn hour(&self) -> u32 {
        self.minute / 60
    }

    /// Day (since scenario start) containing this ping.
    pub fn day(&self) -> u32 {
        self.minute / MINUTES_PER_DAY
    }
}

/// The time-ordered pings of a single person (the paper's Definition 1,
/// before snapping to landmarks).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trajectory {
    /// The person this trajectory belongs to.
    pub person: PersonId,
    /// Pings in increasing `minute` order.
    pub pings: Vec<GpsPing>,
}

impl Trajectory {
    /// The paper's Definition 1 proper: the trajectory as a sequence of
    /// time-ordered *landmarks* (consecutive duplicates collapsed — a
    /// person pinging from home all night is one landmark visit).
    pub fn to_landmarks(
        &self,
        net: &mobirescue_roadnet::graph::RoadNetwork,
        matcher: &crate::map_match::MapMatcher,
    ) -> Vec<(u32, mobirescue_roadnet::graph::LandmarkId)> {
        let mut out: Vec<(u32, mobirescue_roadnet::graph::LandmarkId)> = Vec::new();
        for ping in &self.pings {
            let lm = matcher.nearest_landmark(net, ping.position);
            if out.last().map(|&(_, prev)| prev) != Some(lm) {
                out.push((ping.minute, lm));
            }
        }
        out
    }

    /// Total straight-line displacement along the trajectory, meters.
    pub fn total_displacement_m(&self) -> f64 {
        self.pings
            .windows(2)
            .map(|w| w[0].position.distance_m(w[1].position))
            .sum()
    }
}

/// A complete mobility dataset: the population plus every ping.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MobilityDataset {
    /// All tracked people.
    pub people: Vec<Person>,
    /// All pings, sorted by `(person, minute)`.
    pub pings: Vec<GpsPing>,
}

impl MobilityDataset {
    /// Number of tracked people.
    pub fn num_people(&self) -> usize {
        self.people.len()
    }

    /// Splits the pings into one [`Trajectory`] per person, preserving time
    /// order. People without pings get an empty trajectory.
    pub fn trajectories(&self) -> Vec<Trajectory> {
        let mut out: Vec<Trajectory> = self
            .people
            .iter()
            .map(|p| Trajectory {
                person: p.id,
                pings: Vec::new(),
            })
            .collect();
        for ping in &self.pings {
            out[ping.person.index()].pings.push(*ping);
        }
        for t in &mut out {
            debug_assert!(t.pings.windows(2).all(|w| w[0].minute <= w[1].minute));
        }
        out
    }

    /// Pings recorded during day `day`.
    pub fn pings_on_day(&self, day: u32) -> impl Iterator<Item = &GpsPing> + '_ {
        self.pings.iter().filter(move |p| p.day() == day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::person::MobilityProfile;

    fn tiny_dataset() -> MobilityDataset {
        let home = GeoPoint::new(35.2, -80.8);
        let people = vec![
            Person {
                id: PersonId(0),
                home,
                work: home,
                profile: MobilityProfile::Homebody,
            },
            Person {
                id: PersonId(1),
                home,
                work: home,
                profile: MobilityProfile::Commuter,
            },
        ];
        let ping = |person, minute| GpsPing {
            person: PersonId(person),
            minute,
            position: home,
            altitude_m: 230.0,
            speed_mps: 0.0,
        };
        MobilityDataset {
            people,
            pings: vec![ping(0, 10), ping(0, 1500), ping(1, 70), ping(1, 200)],
        }
    }

    #[test]
    fn ping_time_arithmetic() {
        let p = GpsPing {
            person: PersonId(0),
            minute: MINUTES_PER_DAY + 125,
            position: GeoPoint::new(0.0, 0.0),
            altitude_m: 0.0,
            speed_mps: 0.0,
        };
        assert_eq!(p.day(), 1);
        assert_eq!(p.hour(), 26);
    }

    #[test]
    fn trajectories_split_by_person_in_order() {
        let ds = tiny_dataset();
        let trajs = ds.trajectories();
        assert_eq!(trajs.len(), 2);
        assert_eq!(trajs[0].pings.len(), 2);
        assert_eq!(trajs[1].pings.len(), 2);
        assert!(trajs[1].pings[0].minute < trajs[1].pings[1].minute);
    }

    #[test]
    fn pings_on_day_filters() {
        let ds = tiny_dataset();
        assert_eq!(ds.pings_on_day(0).count(), 3);
        assert_eq!(ds.pings_on_day(1).count(), 1);
        assert_eq!(ds.pings_on_day(2).count(), 0);
    }

    #[test]
    fn landmark_trajectory_collapses_duplicates() {
        let city = mobirescue_roadnet::generator::CityConfig::small().build(9);
        let matcher = crate::map_match::MapMatcher::new(&city.network);
        let home = city.center;
        let far = home.offset_m(3_000.0, 0.0);
        let ping = |minute, pos| GpsPing {
            person: PersonId(0),
            minute,
            position: pos,
            altitude_m: 0.0,
            speed_mps: 0.0,
        };
        let traj = Trajectory {
            person: PersonId(0),
            pings: vec![
                ping(0, home),
                ping(60, home.offset_m(5.0, 5.0)), // same landmark
                ping(120, far),
                ping(180, home),
            ],
        };
        let lms = traj.to_landmarks(&city.network, &matcher);
        assert_eq!(lms.len(), 3, "duplicate home visit collapsed: {lms:?}");
        assert_eq!(lms[0].1, lms[2].1, "returns to the same home landmark");
        assert!(lms.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(traj.total_displacement_m() > 5_900.0);
    }
}
