//! The dispatcher interface and a simple built-in baseline.
//!
//! Every dispatching method under evaluation (MobiRescue's RL, *Schedule*,
//! *Rescue*) implements [`Dispatcher`]: the engine calls it every dispatch
//! period with a [`DispatchState`] snapshot and applies the returned plan
//! after the dispatcher's modeled *computation latency* — the quantity that
//! separates RL (<0.5 s) from integer programming (~300 s) in Figure 13.

use crate::types::{DispatchPlan, Order, RequestView, TeamView};
use mobirescue_roadnet::damage::NetworkCondition;
use mobirescue_roadnet::graph::{LandmarkId, RoadNetwork};
use mobirescue_roadnet::planner::RoutePlanner;
use mobirescue_roadnet::pool;

/// Everything a dispatcher can see at a dispatch tick.
#[derive(Debug)]
pub struct DispatchState<'a> {
    /// Seconds since simulation start.
    pub now_s: u32,
    /// Absolute scenario hour (for predictors indexing weather/flood state).
    pub hour: u32,
    /// All teams.
    pub teams: &'a [TeamView],
    /// Requests that have appeared and are not yet picked up.
    pub waiting: &'a [RequestView],
    /// The road network.
    pub net: &'a RoadNetwork,
    /// Current condition of the network (G̃ now).
    pub condition: &'a NetworkCondition,
    /// Shared per-epoch route planner over `net` — dispatchers route
    /// through this instead of running their own Dijkstras, so
    /// shortest-path trees are computed once per (team location, damage
    /// generation) and shared by every consumer in the epoch.
    pub planner: &'a RoutePlanner<'a>,
    /// Hospital landmarks.
    pub hospitals: &'a [LandmarkId],
    /// The dispatching center.
    pub depot: LandmarkId,
}

impl DispatchState<'_> {
    /// Computes (and caches) the damaged-network shortest-path trees of
    /// every free team, fanning the misses across the machine's cores.
    /// Dispatchers that route per team call this once up front; each
    /// per-team query afterwards is a cache hit. Results are identical to
    /// sequential routing (see [`mobirescue_roadnet::pool`]).
    pub fn prewarm_team_routes(&self, teams: &[&TeamView]) {
        let sources: Vec<LandmarkId> = teams.iter().map(|t| t.location).collect();
        self.planner
            .prewarm(self.condition, &sources, pool::available_threads());
    }
}

/// A rescue-team dispatching policy.
pub trait Dispatcher {
    /// Display name ("MobiRescue", "Schedule", "Rescue", ...).
    fn name(&self) -> &str;

    /// Modeled computation latency of one dispatch round, seconds. The
    /// engine delays applying the plan by this much.
    fn compute_latency_s(&self, state: &DispatchState<'_>) -> f64;

    /// Computes the plan for this tick.
    fn dispatch(&mut self, state: &DispatchState<'_>) -> DispatchPlan;
}

/// A naive built-in policy for engine tests and as an extra baseline: every
/// idle team is sent to the segment of the oldest waiting request not yet
/// claimed this tick; teams with nothing to do stand by where they are.
///
/// Scratch buffers (the claim table over the waiting list and the free-team
/// candidate list) live on the dispatcher and are reused across dispatch
/// rounds — at metro scale the waiting list runs to tens of thousands of
/// entries per epoch, so reallocating them every period dominated the
/// dispatch tick.
#[derive(Debug, Clone, Default)]
pub struct NearestRequestDispatcher {
    claimed: Vec<bool>,
    free: Vec<u32>,
    sources: Vec<LandmarkId>,
}

impl Dispatcher for NearestRequestDispatcher {
    fn name(&self) -> &str {
        "NearestRequest"
    }

    fn compute_latency_s(&self, _state: &DispatchState<'_>) -> f64 {
        0.1
    }

    fn dispatch(&mut self, state: &DispatchState<'_>) -> DispatchPlan {
        let mut plan = DispatchPlan::none(state.teams.len());
        self.claimed.clear();
        self.claimed.resize(state.waiting.len(), false);
        self.free.clear();
        self.sources.clear();
        for (i, t) in state.teams.iter().enumerate() {
            if !t.delivering && t.onboard == 0 {
                self.free.push(i as u32);
                self.sources.push(t.location);
            }
        }
        state
            .planner
            .prewarm(state.condition, &self.sources, pool::available_threads());
        for &ti in &self.free {
            let team: &TeamView = &state.teams[ti as usize];
            // Oldest unclaimed request reachable from this team.
            let sp = state.planner.paths_from(state.condition, team.location);
            let target = state
                .waiting
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.claimed[*i])
                .filter(|(_, r)| sp.travel_time_s(state.net.segment(r.segment).to).is_some())
                .min_by_key(|(_, r)| r.appear_s);
            if let Some((i, r)) = target {
                self.claimed[i] = true;
                plan.orders[team.id.index()] = Some(Order::GoToSegment(r.segment));
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{RequestId, TeamId};
    use mobirescue_roadnet::generator::CityConfig;
    use mobirescue_roadnet::graph::SegmentId;

    #[test]
    fn nearest_dispatcher_claims_each_request_once() {
        let city = CityConfig::small().build(1);
        let cond = NetworkCondition::pristine(&city.network);
        let teams: Vec<TeamView> = (0..3)
            .map(|i| TeamView {
                id: TeamId(i),
                location: city.hospitals[i as usize % city.hospitals.len()],
                onboard: 0,
                delivering: false,
                standby: true,
            })
            .collect();
        let waiting = vec![
            RequestView {
                id: RequestId(0),
                segment: SegmentId(10),
                appear_s: 5,
            },
            RequestView {
                id: RequestId(1),
                segment: SegmentId(20),
                appear_s: 1,
            },
        ];
        let planner = RoutePlanner::new(&city.network);
        let state = DispatchState {
            now_s: 100,
            hour: 0,
            teams: &teams,
            waiting: &waiting,
            net: &city.network,
            condition: &cond,
            planner: &planner,
            hospitals: &city.hospitals,
            depot: city.depot,
        };
        let mut d = NearestRequestDispatcher::default();
        let plan = d.dispatch(&state);
        let targets: Vec<_> = plan.orders.iter().flatten().collect();
        assert_eq!(targets.len(), 2, "two requests, two orders");
        assert_ne!(plan.orders[0], plan.orders[1], "requests claimed once each");
        // Oldest request (id 1) claimed by the first team.
        assert_eq!(plan.orders[0], Some(Order::GoToSegment(SegmentId(20))));
        assert!(d.compute_latency_s(&state) < 1.0);
    }

    #[test]
    fn busy_teams_keep_their_mission() {
        let city = CityConfig::small().build(2);
        let cond = NetworkCondition::pristine(&city.network);
        let teams = vec![TeamView {
            id: TeamId(0),
            location: city.depot,
            onboard: 2,
            delivering: true,
            standby: false,
        }];
        let waiting = vec![RequestView {
            id: RequestId(0),
            segment: SegmentId(0),
            appear_s: 0,
        }];
        let planner = RoutePlanner::new(&city.network);
        let state = DispatchState {
            now_s: 0,
            hour: 0,
            teams: &teams,
            waiting: &waiting,
            net: &city.network,
            condition: &cond,
            planner: &planner,
            hospitals: &city.hospitals,
            depot: city.depot,
        };
        let plan = NearestRequestDispatcher::default().dispatch(&state);
        assert_eq!(plan.orders[0], None);
    }
}
