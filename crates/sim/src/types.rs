//! Core simulation types: configuration, requests, team views, orders.

use mobirescue_roadnet::graph::{LandmarkId, SegmentId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a rescue team.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TeamId(pub u32);

impl TeamId {
    /// Index into team storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TeamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a rescue request.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u32);

impl RequestId {
    /// Index into request storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// One rescue request to be injected into the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestSpec {
    /// Seconds after simulation start at which the request appears.
    pub appear_s: u32,
    /// Road segment the trapped person is on.
    pub segment: SegmentId,
}

/// Simulation configuration (the paper's experiment settings, Section V-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of rescue teams (the paper simulates 100).
    pub num_teams: usize,
    /// Team capacity `c` — people carried at once (the paper suggests 5).
    pub capacity: usize,
    /// Dispatch period in seconds (the paper runs every 5 minutes).
    pub dispatch_period_s: u32,
    /// Time to load one person, seconds.
    pub pickup_service_s: u32,
    /// Absolute scenario hour at which the simulation starts.
    pub start_hour: u32,
    /// Simulated duration in hours (the paper runs 24 h).
    pub duration_hours: u32,
    /// Requests served within this bound are "timely served" (30 min).
    pub timely_threshold_s: u32,
    /// When set, record every team's landmark position at this interval
    /// (seconds) — the paper samples team positions "per unit time (e.g.,
    /// 1 minute)" as RL training data (Section IV-C4).
    pub sample_positions_every_s: Option<u32>,
}

impl SimConfig {
    /// The paper's experiment settings: 100 teams, capacity 5, 5-minute
    /// dispatch period, 24 hours, 30-minute timeliness bound.
    pub fn paper(start_hour: u32) -> Self {
        Self {
            num_teams: 100,
            capacity: 5,
            dispatch_period_s: 300,
            pickup_service_s: 60,
            start_hour,
            duration_hours: 24,
            timely_threshold_s: 1_800,
            sample_positions_every_s: None,
        }
    }

    /// A small configuration for tests.
    pub fn small(start_hour: u32) -> Self {
        Self {
            num_teams: 6,
            duration_hours: 4,
            ..Self::paper(start_hour)
        }
    }

    /// Total simulated seconds.
    pub fn duration_s(&self) -> u32 {
        self.duration_hours * 3_600
    }
}

/// An order for one team, produced by a dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Order {
    /// Drive to the given road segment (the paper's `x_mk = e_j ∈ Ẽ`).
    GoToSegment(SegmentId),
    /// Drive back to the dispatching center and stand by (`x_mk = 0`).
    ReturnToBase,
}

/// A dispatch plan: for each team, an optional new order (`None` keeps the
/// team doing whatever it was doing).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DispatchPlan {
    /// One slot per team, indexed by [`TeamId`].
    pub orders: Vec<Option<Order>>,
}

impl DispatchPlan {
    /// A plan of `n` empty orders.
    pub fn none(n: usize) -> Self {
        Self {
            orders: vec![None; n],
        }
    }
}

/// What a dispatcher can see about one team.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TeamView {
    /// The team's id.
    pub id: TeamId,
    /// The landmark the team is at or will next reach.
    pub location: LandmarkId,
    /// People currently on board.
    pub onboard: usize,
    /// Whether the team is driving to a hospital to unload (it will ignore
    /// orders until done).
    pub delivering: bool,
    /// Whether the team is standing by (idle at a hospital or the depot).
    pub standby: bool,
}

/// What a dispatcher can see about one waiting request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestView {
    /// The request's id.
    pub id: RequestId,
    /// Segment the request is on.
    pub segment: SegmentId,
    /// Seconds after simulation start at which it appeared.
    pub appear_s: u32,
}

/// Final outcome of one request after the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// The request's id.
    pub id: RequestId,
    /// The injected spec.
    pub spec: RequestSpec,
    /// When the person was picked up, if ever.
    pub picked_up_s: Option<u32>,
    /// When the person was delivered to a hospital, if ever.
    pub delivered_s: Option<u32>,
    /// The serving team.
    pub team: Option<TeamId>,
    /// The serving team's driving time from its order to the pickup.
    pub driving_delay_s: Option<f64>,
}

impl RequestOutcome {
    /// Waiting time from appearance to pickup (the paper's *timeliness of
    /// rescuing*, which includes dispatch computation delay).
    pub fn timeliness_s(&self) -> Option<u32> {
        self.picked_up_s
            .map(|p| p.saturating_sub(self.spec.appear_s))
    }

    /// Whether the request was picked up within `threshold_s` of appearing.
    pub fn timely_served(&self, threshold_s: u32) -> bool {
        self.timeliness_s().is_some_and(|t| t <= threshold_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format() {
        assert_eq!(TeamId(3).to_string(), "T3");
        assert_eq!(RequestId(9).to_string(), "R9");
    }

    #[test]
    fn outcome_timeliness() {
        let out = RequestOutcome {
            id: RequestId(0),
            spec: RequestSpec {
                appear_s: 100,
                segment: SegmentId(0),
            },
            picked_up_s: Some(400),
            delivered_s: None,
            team: Some(TeamId(1)),
            driving_delay_s: Some(250.0),
        };
        assert_eq!(out.timeliness_s(), Some(300));
        assert!(out.timely_served(300));
        assert!(!out.timely_served(299));
        let unserved = RequestOutcome {
            picked_up_s: None,
            ..out
        };
        assert_eq!(unserved.timeliness_s(), None);
        assert!(!unserved.timely_served(10_000));
    }

    #[test]
    fn config_durations() {
        let cfg = SimConfig::paper(360);
        assert_eq!(cfg.duration_s(), 86_400);
        assert_eq!(cfg.num_teams, 100);
        assert_eq!(SimConfig::small(0).num_teams, 6);
    }
}
