//! World-state snapshot/restore in the workspace's dependency-free text
//! style (`svm::persist`, `rl::persist`).
//!
//! A snapshot taken at an epoch boundary captures everything the engine
//! needs to resume mid-disaster: the clock, every request outcome so far,
//! the per-segment waiting queues (in pickup order), each team's mission,
//! route and load, the not-yet-applied dispatch plans, and the metric
//! accumulators. Restoring onto the *same* city and conditions yields a
//! [`World`](super::World) that continues the run step-for-step
//! identically — the recovery path of the `mobirescue-serve` runtime.
//!
//! The format is line-oriented, versioned (`mrworld 1` header), and emits
//! floats with `{:?}` (shortest round-tripping representation), so
//! snapshot → restore → snapshot is byte-stable.

use super::{Mission, World, WorldError};
use crate::types::{DispatchPlan, Order, RequestId, RequestOutcome, RequestSpec, SimConfig};
use mobirescue_mobility::flow::HourlyConditions;
use mobirescue_roadnet::generator::City;
use mobirescue_roadnet::graph::{LandmarkId, SegmentId};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::str::FromStr;

fn bad(why: impl Into<String>) -> WorldError {
    WorldError::BadSnapshot(why.into())
}

/// FNV-1a 64-bit hash of `text` — the workspace's snapshot integrity
/// checksum. Dependency-free and byte-stable across platforms.
pub fn fnv1a_64(text: &str) -> u64 {
    fnv1a_64_bytes(text.as_bytes())
}

/// FNV-1a 64-bit over raw bytes — the binary-payload variant of
/// [`fnv1a_64`], used by the `mrnet 1` wire frames where the checksummed
/// content is not UTF-8 text.
pub fn fnv1a_64_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends the integrity trailer (`sum <16-hex-digits>`) to a snapshot
/// body. Every versioned snapshot format in the workspace (`mrworld 1`,
/// `mrserve 1`) is sealed this way on write.
pub fn seal_snapshot(mut body: String) -> String {
    let sum = fnv1a_64(&body);
    let _ = writeln!(body, "sum {sum:016x}");
    body
}

/// Verifies and strips the integrity trailer, returning the body it
/// covers.
///
/// # Errors
///
/// Returns a description when the trailer is missing, malformed, or does
/// not match the body — the caller maps it into its typed snapshot error.
/// Any truncation or bit-flip of a sealed snapshot lands here: either the
/// body no longer hashes to the recorded sum, or the trailer itself is
/// damaged.
pub fn open_snapshot(text: &str) -> Result<&str, String> {
    let missing = || "missing checksum trailer".to_owned();
    let rest = text.strip_suffix('\n').ok_or_else(missing)?;
    let (head, last) = rest.rsplit_once('\n').ok_or_else(missing)?;
    let hex = last.strip_prefix("sum ").ok_or_else(missing)?;
    let expect =
        u64::from_str_radix(hex, 16).map_err(|_| format!("bad checksum trailer `{last}`"))?;
    let body = &text[..head.len() + 1];
    let got = fnv1a_64(body);
    if got != expect {
        return Err(format!(
            "checksum mismatch: trailer says {expect:016x}, content hashes to {got:016x}"
        ));
    }
    Ok(body)
}

fn opt_u32(v: Option<u32>) -> String {
    v.map_or_else(|| "-".into(), |x| x.to_string())
}

fn opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "-".into(), |x| format!("{x:?}"))
}

fn parse_opt_u32(tok: &str) -> Result<Option<u32>, WorldError> {
    if tok == "-" {
        Ok(None)
    } else {
        u32::from_str(tok)
            .map(Some)
            .map_err(|_| bad(format!("bad u32 `{tok}`")))
    }
}

fn parse_opt_f64(tok: &str) -> Result<Option<f64>, WorldError> {
    if tok == "-" {
        Ok(None)
    } else {
        f64::from_str(tok)
            .map(Some)
            .map_err(|_| bad(format!("bad f64 `{tok}`")))
    }
}

fn parse<T: FromStr>(tok: Option<&str>, what: &str) -> Result<T, WorldError> {
    tok.ok_or_else(|| bad(format!("missing {what}")))?
        .parse()
        .map_err(|_| bad(format!("bad {what}")))
}

fn mission_token(m: Mission) -> String {
    match m {
        Mission::Standby => "s".into(),
        Mission::ToSegment(seg) => format!("g{}", seg.0),
        Mission::ToHospital => "h".into(),
        Mission::ToBase => "b".into(),
    }
}

fn parse_mission(tok: &str) -> Result<Mission, WorldError> {
    match tok {
        "s" => Ok(Mission::Standby),
        "h" => Ok(Mission::ToHospital),
        "b" => Ok(Mission::ToBase),
        _ => tok
            .strip_prefix('g')
            .and_then(|n| u32::from_str(n).ok())
            .map(|n| Mission::ToSegment(SegmentId(n)))
            .ok_or_else(|| bad(format!("bad mission `{tok}`"))),
    }
}

fn order_token(o: Option<Order>) -> String {
    match o {
        None => "-".into(),
        Some(Order::GoToSegment(seg)) => format!("g{}", seg.0),
        Some(Order::ReturnToBase) => "b".into(),
    }
}

fn parse_order(tok: &str) -> Result<Option<Order>, WorldError> {
    match tok {
        "-" => Ok(None),
        "b" => Ok(Some(Order::ReturnToBase)),
        _ => tok
            .strip_prefix('g')
            .and_then(|n| u32::from_str(n).ok())
            .map(|n| Some(Order::GoToSegment(SegmentId(n))))
            .ok_or_else(|| bad(format!("bad order `{tok}`"))),
    }
}

impl World<'_> {
    /// Serializes the full world state to the versioned text format.
    pub fn snapshot_text(&self) -> String {
        let mut out = String::from("mrworld 1\n");
        let c = &self.config;
        let _ = writeln!(
            out,
            "config {} {} {} {} {} {} {} {}",
            c.num_teams,
            c.capacity,
            c.dispatch_period_s,
            c.pickup_service_s,
            c.start_hour,
            c.duration_hours,
            c.timely_threshold_s,
            c.sample_positions_every_s
                .map_or_else(|| "-".into(), |v| v.to_string()),
        );
        let _ = writeln!(
            out,
            "clock {} {} {} {} {}",
            self.now,
            self.next_spec,
            self.dispatch_rounds,
            self.unroutable_orders,
            self.waiting_at_last_tick
        );
        for (id, spec) in &self.specs {
            let _ = writeln!(out, "spec {} {} {}", id.0, spec.appear_s, spec.segment.0);
        }
        for i in 0..self.requests.len() {
            let o = self.requests.outcome(i);
            let _ = writeln!(
                out,
                "outcome {} {} {} {} {} {} {}",
                o.id.0,
                o.spec.appear_s,
                o.spec.segment.0,
                opt_u32(o.picked_up_s),
                opt_u32(o.delivered_s),
                o.team.map_or_else(|| "-".into(), |t| t.0.to_string()),
                opt_f64(o.driving_delay_s),
            );
        }
        // Sorted by segment for byte stability (queue order within a
        // segment is pickup order and is preserved as-is).
        for seg in self.waiting.present_sorted() {
            let _ = write!(out, "wait {}", seg.0);
            for id in self.waiting.ids(seg) {
                let _ = write!(out, " {}", id.0);
            }
            out.push('\n');
        }
        for ti in 0..self.teams.len() {
            let _ = write!(
                out,
                "team {} {:?} {:?} {} {} route",
                self.teams.location[ti].0,
                self.teams.seg_remaining_s[ti],
                self.teams.stall_s[ti],
                self.teams.order_start_s[ti],
                mission_token(self.teams.mission[ti]),
            );
            for seg in &self.teams.routes[ti] {
                let _ = write!(out, " {}", seg.0);
            }
            let _ = write!(out, " onboard");
            for id in self.teams.onboard(ti) {
                let _ = write!(out, " {}", id.0);
            }
            out.push('\n');
        }
        for (apply_at, plan) in &self.pending_plans {
            let _ = write!(out, "plan {}", apply_at);
            for &o in &plan.orders {
                let _ = write!(out, " {}", order_token(o));
            }
            out.push('\n');
        }
        for &(s, n) in &self.serving_per_tick {
            let _ = writeln!(out, "tick {s} {n}");
        }
        for (ti, row) in self.team_served.iter().enumerate() {
            let _ = write!(out, "served {ti}");
            for v in row {
                let _ = write!(out, " {v}");
            }
            out.push('\n');
        }
        for (s, positions) in &self.position_samples {
            let _ = write!(out, "possample {s}");
            for p in positions {
                let _ = write!(out, " {}", p.0);
            }
            out.push('\n');
        }
        out.push_str("end\n");
        seal_snapshot(out)
    }

    /// Rebuilds a world from a snapshot over the *same* city and
    /// conditions it was taken from.
    ///
    /// # Errors
    ///
    /// Returns [`WorldError::BadSnapshot`] on any malformed or truncated
    /// input, and the usual construction errors when the embedded config
    /// does not fit `city`/`conditions`.
    pub fn restore_text<'a>(
        city: &'a City,
        conditions: &'a HourlyConditions,
        text: &str,
    ) -> Result<World<'a>, WorldError> {
        // Integrity first: a snapshot that fails its checksum is rejected
        // before a single record is interpreted.
        let text = open_snapshot(text).map_err(bad)?;
        let mut lines = text.lines();
        if lines.next() != Some("mrworld 1") {
            return Err(bad("missing `mrworld 1` header"));
        }
        let config_line = lines.next().ok_or_else(|| bad("missing config line"))?;
        let mut p = config_line.split_whitespace();
        if p.next() != Some("config") {
            return Err(bad("missing config line"));
        }
        let config = SimConfig {
            num_teams: parse(p.next(), "num_teams")?,
            capacity: parse(p.next(), "capacity")?,
            dispatch_period_s: parse(p.next(), "dispatch_period_s")?,
            pickup_service_s: parse(p.next(), "pickup_service_s")?,
            start_hour: parse(p.next(), "start_hour")?,
            duration_hours: parse(p.next(), "duration_hours")?,
            timely_threshold_s: parse(p.next(), "timely_threshold_s")?,
            sample_positions_every_s: parse_opt_u32(
                p.next()
                    .ok_or_else(|| bad("missing sample_positions_every_s"))?,
            )?,
        };
        let mut world = World::new(city, conditions, &config)?;
        let clock_line = lines.next().ok_or_else(|| bad("missing clock line"))?;
        let mut p = clock_line.split_whitespace();
        if p.next() != Some("clock") {
            return Err(bad("missing clock line"));
        }
        world.now = parse(p.next(), "now")?;
        world.next_spec = parse(p.next(), "next_spec")?;
        world.dispatch_rounds = parse(p.next(), "dispatch_rounds")?;
        world.unroutable_orders = parse(p.next(), "unroutable_orders")?;
        world.waiting_at_last_tick = parse(p.next(), "waiting_at_last_tick")?;

        // Restored collections replace the fresh ones wholesale.
        world.teams.clear();
        world.team_served.clear();
        let num_segments = city.network.num_segments();
        let mut saw_end = false;
        for line in lines {
            let mut p = line.split_whitespace();
            let Some(tag) = p.next() else { continue };
            match tag {
                "spec" => {
                    let id = RequestId(parse(p.next(), "spec id")?);
                    let appear_s = parse(p.next(), "spec appear_s")?;
                    let segment = SegmentId(parse(p.next(), "spec segment")?);
                    if segment.index() >= num_segments {
                        return Err(WorldError::UnknownSegment(segment));
                    }
                    world.specs.push((id, RequestSpec { appear_s, segment }));
                }
                "outcome" => {
                    let id = RequestId(parse(p.next(), "outcome id")?);
                    if id.index() != world.requests.len() {
                        return Err(bad(format!("outcome id {} out of order", id.0)));
                    }
                    let appear_s = parse(p.next(), "outcome appear_s")?;
                    let segment = SegmentId(parse(p.next(), "outcome segment")?);
                    let picked_up_s =
                        parse_opt_u32(p.next().ok_or_else(|| bad("missing picked_up"))?)?;
                    let delivered_s =
                        parse_opt_u32(p.next().ok_or_else(|| bad("missing delivered"))?)?;
                    let team = parse_opt_u32(p.next().ok_or_else(|| bad("missing team"))?)?
                        .map(crate::types::TeamId);
                    let driving_delay_s =
                        parse_opt_f64(p.next().ok_or_else(|| bad("missing delay"))?)?;
                    world.requests.push_outcome(&RequestOutcome {
                        id,
                        spec: RequestSpec { appear_s, segment },
                        picked_up_s,
                        delivered_s,
                        team,
                        driving_delay_s,
                    });
                }
                "wait" => {
                    let seg = SegmentId(parse(p.next(), "wait segment")?);
                    if seg.index() >= num_segments {
                        return Err(WorldError::UnknownSegment(seg));
                    }
                    let ids: Vec<RequestId> = p
                        .map(|tok| {
                            u32::from_str(tok)
                                .map(RequestId)
                                .map_err(|_| bad(format!("bad wait id `{tok}`")))
                        })
                        .collect::<Result<_, _>>()?;
                    world.waiting.set_entry(seg, ids);
                }
                "team" => {
                    let location = LandmarkId(parse(p.next(), "team location")?);
                    let seg_remaining_s: f64 = parse(p.next(), "team seg_remaining")?;
                    let stall_s: f64 = parse(p.next(), "team stall")?;
                    let order_start_s = parse(p.next(), "team order_start")?;
                    let mission =
                        parse_mission(p.next().ok_or_else(|| bad("missing team mission"))?)?;
                    if p.next() != Some("route") {
                        return Err(bad("missing team route marker"));
                    }
                    let mut route = VecDeque::new();
                    let mut onboard = Vec::new();
                    let mut in_route = true;
                    for tok in p {
                        if tok == "onboard" {
                            in_route = false;
                        } else if in_route {
                            route.push_back(SegmentId(parse(Some(tok), "route segment")?));
                        } else {
                            onboard.push(RequestId(parse(Some(tok), "onboard id")?));
                        }
                    }
                    if in_route {
                        return Err(bad("missing team onboard marker"));
                    }
                    if !world.teams.push(
                        location,
                        route,
                        seg_remaining_s,
                        stall_s,
                        &onboard,
                        mission,
                        order_start_s,
                    ) {
                        return Err(bad("team onboard exceeds capacity"));
                    }
                }
                "plan" => {
                    let apply_at = parse(p.next(), "plan apply_at")?;
                    let orders: Vec<Option<Order>> =
                        p.map(parse_order).collect::<Result<_, _>>()?;
                    world
                        .pending_plans
                        .push_back((apply_at, DispatchPlan { orders }));
                }
                "tick" => {
                    let s = parse(p.next(), "tick second")?;
                    let n = parse(p.next(), "tick count")?;
                    world.serving_per_tick.push((s, n));
                }
                "served" => {
                    let _ti: usize = parse(p.next(), "served team index")?;
                    let row: Vec<u32> = p
                        .map(|tok| parse(Some(tok), "served count"))
                        .collect::<Result<_, _>>()?;
                    world.team_served.push(row);
                }
                "possample" => {
                    let s = parse(p.next(), "possample second")?;
                    let positions: Vec<LandmarkId> = p
                        .map(|tok| parse(Some(tok), "possample landmark").map(LandmarkId))
                        .collect::<Result<_, _>>()?;
                    world.position_samples.push((s, positions));
                }
                "end" => {
                    saw_end = true;
                    break;
                }
                other => return Err(bad(format!("unknown record `{other}`"))),
            }
        }
        if !saw_end {
            return Err(bad("truncated snapshot (missing `end`)"));
        }
        if world.teams.len() != config.num_teams {
            return Err(bad(format!(
                "snapshot has {} teams, config says {}",
                world.teams.len(),
                config.num_teams
            )));
        }
        if world.next_spec > world.specs.len() {
            return Err(bad("next_spec beyond scheduled specs"));
        }
        Ok(world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::NearestRequestDispatcher;
    use crate::engine::World;
    use mobirescue_disaster::hurricane::Hurricane;
    use mobirescue_disaster::scenario::DisasterScenario;
    use mobirescue_roadnet::generator::CityConfig;

    fn fixture() -> (City, HourlyConditions) {
        let city = CityConfig::small().build(5);
        let disaster = DisasterScenario::new(&city, Hurricane::florence(), 5);
        let conditions = HourlyConditions::compute(&city.network, &disaster);
        (city, conditions)
    }

    fn sample_requests(city: &City) -> Vec<RequestSpec> {
        let n = city.network.num_segments() as u32;
        (0..14)
            .map(|i| RequestSpec {
                appear_s: i * 173,
                segment: SegmentId((i * 37) % n),
            })
            .collect()
    }

    #[test]
    fn snapshot_round_trips_byte_stable() {
        let (city, conditions) = fixture();
        let config = SimConfig::small(0);
        let mut world = World::new(&city, &conditions, &config).unwrap();
        world.schedule_requests(&sample_requests(&city)).unwrap();
        let mut d = NearestRequestDispatcher::default();
        for _ in 0..3 {
            world.run_epoch(&mut d, 0.0);
        }
        let snap = world.snapshot_text();
        let restored = World::restore_text(&city, &conditions, &snap).unwrap();
        assert_eq!(
            restored.snapshot_text(),
            snap,
            "snapshot → restore → snapshot"
        );
    }

    #[test]
    fn restored_world_continues_identically() {
        let (city, conditions) = fixture();
        let config = SimConfig::small(0);
        let mut world = World::new(&city, &conditions, &config).unwrap();
        world.schedule_requests(&sample_requests(&city)).unwrap();
        let mut d = NearestRequestDispatcher::default();
        for _ in 0..2 {
            world.run_epoch(&mut d, 0.0);
        }
        let snap = world.snapshot_text();
        let mut restored = World::restore_text(&city, &conditions, &snap).unwrap();

        // The dispatcher is stateless, so original and restored evolve in
        // lockstep from the boundary.
        let mut d2 = NearestRequestDispatcher::default();
        for _ in 0..4 {
            world.run_epoch(&mut d, 0.0);
            restored.run_epoch(&mut d2, 0.0);
        }
        assert_eq!(world.snapshot_text(), restored.snapshot_text());
    }

    #[test]
    fn rejects_malformed_snapshots() {
        let (city, conditions) = fixture();
        let reject = |text: &str| {
            assert!(
                World::restore_text(&city, &conditions, text).is_err(),
                "snapshot should be rejected: {text:?}"
            );
        };
        // No/damaged checksum trailer (including the empty and headerless
        // inputs, which cannot carry a valid trailer at all).
        reject("");
        reject("nope\n");
        reject("mrworld 1\n");
        reject("mrworld 1\nend\nsum zzzz\n");
        reject("mrworld 1\nend\nsum 0000000000000000\n"); // wrong sum
                                                          // Semantically malformed but correctly sealed bodies: the
                                                          // checksum passes, the record validation still rejects.
        let sealed = |body: &str| seal_snapshot(body.to_owned());
        reject(&sealed("mrworld 1\n"));
        reject(&sealed("mrworld 1\nconfig 1 1 300 60 0 4 1800 -\n")); // no clock
        reject(&sealed(
            "mrworld 1\nconfig 1 1 300 60 0 4 1800 -\nclock 0 0 0 0 0\n",
        )); // no end
        reject(&sealed(
            "mrworld 1\nconfig 1 1 300 60 0 4 1800 -\nclock 0 0 0 0 0\nbogus record\nend\n",
        ));
        // Wrong team count vs config.
        reject(&sealed(
            "mrworld 1\nconfig 2 5 300 60 0 4 1800 -\nclock 0 0 0 0 0\nend\n",
        ));
        // Unknown segment in a spec.
        reject(&sealed(
            "mrworld 1\nconfig 1 5 300 60 0 4 1800 -\nclock 0 0 0 0 0\nspec 0 0 999999\nteam 0 0.0 0.0 0 s route onboard\nend\n",
        ));
    }

    #[test]
    fn checksum_trailer_seals_and_opens() {
        let sealed = seal_snapshot("mrworld 1\nend\n".to_owned());
        assert!(sealed.ends_with('\n'));
        assert_eq!(
            open_snapshot(&sealed).expect("valid seal"),
            "mrworld 1\nend\n"
        );
        // Flipping any single byte of the sealed text breaks verification.
        for i in 0..sealed.len() {
            let mut bytes = sealed.clone().into_bytes();
            bytes[i] ^= 0x01;
            let corrupt = String::from_utf8_lossy(&bytes).into_owned();
            assert!(
                open_snapshot(&corrupt).is_err(),
                "flip at byte {i} accepted"
            );
        }
        // Any truncation breaks it too.
        for i in 0..sealed.len() {
            assert!(
                open_snapshot(&sealed[..i]).is_err(),
                "truncation at {i} accepted"
            );
        }
    }
}
