//! Struct-of-arrays storage for the engine's hot state.
//!
//! At metro scale (100k+ segments, hundreds of teams, tens of thousands of
//! requests) the original array-of-structs layout — one heap `Vec` per team,
//! one `HashMap` entry per waiting segment, one 56-byte `RequestOutcome`
//! per request — dominates both cache misses and allocator traffic in the
//! per-second step loop. These arenas keep each field in its own flat
//! parallel vector indexed by the entity's id, with sentinel encodings for
//! the optional fields (`u32::MAX` for absent seconds/teams, NaN for the
//! absent delay), and the waiting queues in a dense per-segment table with
//! a dirty list instead of a hash map.
//!
//! The layouts are storage-only: every observable behavior — pickup order,
//! dispatch view ordering, snapshot text — is bit-identical to the original
//! engine (pinned by `tests/scale_equivalence.rs` and the sim golden
//! suites).

use crate::types::{RequestId, RequestOutcome, RequestSpec, TeamId};
use mobirescue_roadnet::graph::{LandmarkId, SegmentId};
use std::collections::VecDeque;

use super::Mission;

/// Sentinel for "absent" in the `u32` columns (never a legal second or
/// team index: windows are bounded well below `u32::MAX`).
pub(super) const NO_U32: u32 = u32::MAX;

/// Request state in parallel columns indexed by [`RequestId`].
pub(super) struct RequestArena {
    appear_s: Vec<u32>,
    segment: Vec<SegmentId>,
    /// `NO_U32` until picked up.
    picked_up_s: Vec<u32>,
    /// `NO_U32` until delivered.
    delivered_s: Vec<u32>,
    /// `NO_U32` until assigned via pickup.
    team: Vec<u32>,
    /// NaN until picked up.
    driving_delay_s: Vec<f64>,
    picked_count: usize,
    delivered_count: usize,
}

impl RequestArena {
    pub(super) fn new() -> Self {
        Self {
            appear_s: Vec::new(),
            segment: Vec::new(),
            picked_up_s: Vec::new(),
            delivered_s: Vec::new(),
            team: Vec::new(),
            driving_delay_s: Vec::new(),
            picked_count: 0,
            delivered_count: 0,
        }
    }

    pub(super) fn len(&self) -> usize {
        self.appear_s.len()
    }

    /// Registers a fresh (not yet appeared) request; its id is its index.
    pub(super) fn push_spec(&mut self, spec: RequestSpec) -> RequestId {
        let id = RequestId(self.appear_s.len() as u32);
        self.appear_s.push(spec.appear_s);
        self.segment.push(spec.segment);
        self.picked_up_s.push(NO_U32);
        self.delivered_s.push(NO_U32);
        self.team.push(NO_U32);
        self.driving_delay_s.push(f64::NAN);
        id
    }

    /// Appends a fully described outcome (the snapshot-restore path). The
    /// outcome's id must equal the next index — snapshots write outcomes
    /// in id order.
    pub(super) fn push_outcome(&mut self, o: &RequestOutcome) {
        debug_assert_eq!(o.id.index(), self.appear_s.len());
        self.appear_s.push(o.spec.appear_s);
        self.segment.push(o.spec.segment);
        self.picked_up_s.push(o.picked_up_s.unwrap_or(NO_U32));
        self.delivered_s.push(o.delivered_s.unwrap_or(NO_U32));
        self.team.push(o.team.map_or(NO_U32, |t| t.0));
        self.driving_delay_s
            .push(o.driving_delay_s.unwrap_or(f64::NAN));
        if o.picked_up_s.is_some() {
            self.picked_count += 1;
        }
        if o.delivered_s.is_some() {
            self.delivered_count += 1;
        }
    }

    pub(super) fn appear_s(&self, id: RequestId) -> u32 {
        self.appear_s[id.index()]
    }

    /// Marks `id` picked up now by `team`, driving delay included.
    pub(super) fn record_pickup(&mut self, id: RequestId, now: u32, team: TeamId, delay_s: f64) {
        let i = id.index();
        self.picked_up_s[i] = now;
        self.team[i] = team.0;
        self.driving_delay_s[i] = delay_s;
        self.picked_count += 1;
    }

    /// Marks `id` delivered now.
    pub(super) fn record_delivery(&mut self, id: RequestId, now: u32) {
        self.delivered_s[id.index()] = now;
        self.delivered_count += 1;
    }

    pub(super) fn picked_count(&self) -> usize {
        self.picked_count
    }

    pub(super) fn delivered_count(&self) -> usize {
        self.delivered_count
    }

    /// Materializes one request's outcome row.
    pub(super) fn outcome(&self, index: usize) -> RequestOutcome {
        let none_u32 = |v: u32| (v != NO_U32).then_some(v);
        let delay = self.driving_delay_s[index];
        RequestOutcome {
            id: RequestId(index as u32),
            spec: RequestSpec {
                appear_s: self.appear_s[index],
                segment: self.segment[index],
            },
            picked_up_s: none_u32(self.picked_up_s[index]),
            delivered_s: none_u32(self.delivered_s[index]),
            team: none_u32(self.team[index]).map(TeamId),
            driving_delay_s: (!delay.is_nan()).then_some(delay),
        }
    }

    /// Materializes every outcome (the batch `SimOutcome` shape).
    pub(super) fn to_outcomes(&self) -> Vec<RequestOutcome> {
        (0..self.len()).map(|i| self.outcome(i)).collect()
    }
}

/// Team state in parallel columns indexed by team number. Onboard loads
/// live in one flat vector strided by the configured capacity.
pub(super) struct TeamArena {
    capacity: usize,
    pub(super) location: Vec<LandmarkId>,
    pub(super) seg_remaining_s: Vec<f64>,
    pub(super) stall_s: Vec<f64>,
    pub(super) mission: Vec<Mission>,
    pub(super) order_start_s: Vec<u32>,
    pub(super) routes: Vec<VecDeque<SegmentId>>,
    onboard: Vec<RequestId>,
    onboard_len: Vec<u32>,
}

impl TeamArena {
    pub(super) fn new(capacity: usize) -> Self {
        Self {
            capacity,
            location: Vec::new(),
            seg_remaining_s: Vec::new(),
            stall_s: Vec::new(),
            mission: Vec::new(),
            order_start_s: Vec::new(),
            routes: Vec::new(),
            onboard: Vec::new(),
            onboard_len: Vec::new(),
        }
    }

    pub(super) fn len(&self) -> usize {
        self.location.len()
    }

    pub(super) fn clear(&mut self) {
        self.location.clear();
        self.seg_remaining_s.clear();
        self.stall_s.clear();
        self.mission.clear();
        self.order_start_s.clear();
        self.routes.clear();
        self.onboard.clear();
        self.onboard_len.clear();
    }

    /// Appends one team. Returns `false` (appending nothing) when the
    /// onboard load exceeds the arena's capacity stride.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn push(
        &mut self,
        location: LandmarkId,
        route: VecDeque<SegmentId>,
        seg_remaining_s: f64,
        stall_s: f64,
        onboard: &[RequestId],
        mission: Mission,
        order_start_s: u32,
    ) -> bool {
        if onboard.len() > self.capacity {
            return false;
        }
        self.location.push(location);
        self.seg_remaining_s.push(seg_remaining_s);
        self.stall_s.push(stall_s);
        self.mission.push(mission);
        self.order_start_s.push(order_start_s);
        self.routes.push(route);
        let base = self.onboard.len();
        self.onboard.resize(base + self.capacity, RequestId(NO_U32));
        self.onboard[base..base + onboard.len()].copy_from_slice(onboard);
        self.onboard_len.push(onboard.len() as u32);
        true
    }

    pub(super) fn onboard(&self, ti: usize) -> &[RequestId] {
        let base = ti * self.capacity;
        &self.onboard[base..base + self.onboard_len[ti] as usize]
    }

    pub(super) fn onboard_count(&self, ti: usize) -> usize {
        self.onboard_len[ti] as usize
    }

    pub(super) fn push_onboard(&mut self, ti: usize, id: RequestId) {
        let len = self.onboard_len[ti] as usize;
        debug_assert!(len < self.capacity);
        self.onboard[ti * self.capacity + len] = id;
        self.onboard_len[ti] = (len + 1) as u32;
    }

    pub(super) fn clear_onboard(&mut self, ti: usize) {
        self.onboard_len[ti] = 0;
    }

    pub(super) fn standby(&self, ti: usize) -> bool {
        matches!(self.mission[ti], Mission::Standby)
    }

    pub(super) fn serving(&self, ti: usize) -> bool {
        matches!(
            self.mission[ti],
            Mission::ToSegment(_) | Mission::ToHospital
        )
    }

    pub(super) fn num_serving(&self) -> usize {
        (0..self.len()).filter(|&ti| self.serving(ti)).count()
    }
}

/// Per-segment waiting queues in a dense table plus a dirty list — the
/// replacement for `HashMap<SegmentId, Vec<RequestId>>` whose per-entry
/// hashing and allocation dominated ingest at metro segment counts.
///
/// "Present" mirrors the old map's key-presence exactly (entries are
/// created by push or restore, removed when drained by pickups), so the
/// snapshot's `wait` records are byte-identical. The dirty list may carry
/// stale or duplicate segments between compactions; iteration sites sort,
/// dedup, and filter by presence, which also keeps the ordering
/// deterministic without hashing.
pub(super) struct WaitingQueues {
    queues: Vec<Vec<RequestId>>,
    present: Vec<bool>,
    dirty: Vec<SegmentId>,
    total: usize,
}

impl WaitingQueues {
    pub(super) fn new(num_segments: usize) -> Self {
        Self {
            queues: vec![Vec::new(); num_segments],
            present: vec![false; num_segments],
            dirty: Vec::new(),
            total: 0,
        }
    }

    /// Requests waiting across all segments.
    pub(super) fn total(&self) -> usize {
        self.total
    }

    pub(super) fn present(&self, seg: SegmentId) -> bool {
        self.present[seg.index()]
    }

    pub(super) fn ids(&self, seg: SegmentId) -> &[RequestId] {
        &self.queues[seg.index()]
    }

    /// Appends `id` to `seg`'s queue (pickup order), creating the entry.
    pub(super) fn push(&mut self, seg: SegmentId, id: RequestId) {
        if !self.present[seg.index()] {
            self.present[seg.index()] = true;
            self.dirty.push(seg);
        }
        self.queues[seg.index()].push(id);
        self.total += 1;
    }

    /// Pops the segment's oldest waiting request (FIFO pickup order).
    pub(super) fn pop_front(&mut self, seg: SegmentId) -> Option<RequestId> {
        let queue = &mut self.queues[seg.index()];
        if queue.is_empty() {
            return None;
        }
        self.total -= 1;
        Some(queue.remove(0))
    }

    /// Drops the entry for `seg` (mirrors the old map's `remove` of a
    /// drained queue). The stale dirty slot is filtered out at the next
    /// iteration.
    pub(super) fn remove_entry(&mut self, seg: SegmentId) {
        self.total -= self.queues[seg.index()].len();
        self.queues[seg.index()].clear();
        self.present[seg.index()] = false;
    }

    /// Replaces `seg`'s entry wholesale (the snapshot-restore path);
    /// present even when `ids` is empty, exactly like a map insert.
    pub(super) fn set_entry(&mut self, seg: SegmentId, ids: Vec<RequestId>) {
        if self.present[seg.index()] {
            self.total -= self.queues[seg.index()].len();
        } else {
            self.present[seg.index()] = true;
            self.dirty.push(seg);
        }
        self.total += ids.len();
        self.queues[seg.index()] = ids;
    }

    /// The present segments, sorted — the deterministic iteration order
    /// for snapshots and dispatch views.
    pub(super) fn present_sorted(&self) -> Vec<SegmentId> {
        let mut segs: Vec<SegmentId> = self
            .dirty
            .iter()
            .copied()
            .filter(|&s| self.present[s.index()])
            .collect();
        segs.sort_unstable_by_key(|s| s.0);
        segs.dedup();
        segs
    }

    /// Shrinks the dirty list to exactly the present segments. Called at
    /// dispatch ticks so stale slots from drained queues don't accumulate
    /// across a long-running world.
    pub(super) fn compact(&mut self) {
        let segs = self.present_sorted();
        self.dirty = segs;
    }
}
