//! The discrete-time rescue simulation engine.
//!
//! Replaces the paper's SUMO/Flow stack at the granularity its metrics are
//! defined on: teams drive shortest routes over the hour-by-hour damaged
//! network, pick up requests on the segments they traverse (the paper's
//! reward counts requests "encountered by driving to their destination"),
//! deliver to the nearest hospital when full or done, and receive new
//! orders every dispatch period — delayed by the dispatcher's computation
//! latency, exactly what Figure 13's timeliness metric penalizes.
//!
//! The engine is a stateful [`World`] that advances one second at a time
//! and accepts requests injected *while running* — the shape a long-lived
//! dispatch service needs (see the `mobirescue-serve` crate). The
//! original batch entry point [`run`] is a thin wrapper: schedule every
//! request up front, step to the end, collect the [`SimOutcome`].

use crate::dispatcher::{DispatchState, Dispatcher};
use crate::types::{
    DispatchPlan, Order, RequestId, RequestOutcome, RequestSpec, RequestView, SimConfig, TeamId,
    TeamView,
};
use mobirescue_mobility::flow::HourlyConditions;
use mobirescue_obs::PhaseTimer;
use mobirescue_roadnet::damage::NetworkCondition;
use mobirescue_roadnet::generator::City;
use mobirescue_roadnet::graph::{LandmarkId, SegmentId};
use mobirescue_roadnet::planner::RoutePlanner;
use mobirescue_roadnet::routing::TravelCost;
use std::collections::{HashMap, VecDeque};

mod arena;
mod snapshot;

use arena::{RequestArena, TeamArena, WaitingQueues, NO_U32};

pub use snapshot::{fnv1a_64, fnv1a_64_bytes, open_snapshot, seal_snapshot};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mission {
    Standby,
    ToSegment(SegmentId),
    ToHospital,
    ToBase,
}

/// Why a [`World`] could not be built or an event could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldError {
    /// `num_teams`, `capacity` or `dispatch_period_s` is zero.
    DegenerateConfig(&'static str),
    /// The city has no hospitals.
    NoHospitals,
    /// A request references a segment outside the network.
    UnknownSegment(SegmentId),
    /// The simulated window extends past the scenario's hourly conditions.
    WindowExceedsConditions,
    /// A snapshot failed to parse.
    BadSnapshot(String),
}

impl std::fmt::Display for WorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorldError::DegenerateConfig(what) => write!(f, "degenerate config: {what}"),
            WorldError::NoHospitals => write!(f, "city must have hospitals"),
            WorldError::UnknownSegment(s) => write!(f, "unknown segment {}", s.0),
            WorldError::WindowExceedsConditions => {
                write!(f, "simulation window exceeds scenario conditions")
            }
            WorldError::BadSnapshot(why) => write!(f, "bad snapshot: {why}"),
        }
    }
}

impl std::error::Error for WorldError {}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Name of the dispatcher that produced this run.
    pub dispatcher: String,
    /// The configuration used.
    pub config: SimConfig,
    /// Final state of every injected request.
    pub requests: Vec<RequestOutcome>,
    /// `(second, serving team count)` sampled at every dispatch tick
    /// (Figure 14's series).
    pub serving_per_tick: Vec<(u32, usize)>,
    /// Requests picked up per team per simulated hour (Figures 9–10).
    pub team_served: Vec<Vec<u32>>,
    /// Number of dispatcher invocations.
    pub dispatch_rounds: u32,
    /// Orders that could not be routed on the damaged network.
    pub unroutable_orders: u32,
    /// Sampled `(second, per-team landmark)` rows when
    /// [`SimConfig::sample_positions_every_s`] is set — the paper's RL
    /// training-data stream of team positions.
    pub position_samples: Vec<(u32, Vec<LandmarkId>)>,
}

/// Summary of one dispatch epoch advanced by [`World::run_epoch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochReport {
    /// Index of the completed epoch (0-based).
    pub epoch: u32,
    /// Simulation second at the start of the epoch.
    pub start_s: u32,
    /// Requests waiting when the epoch's dispatch tick ran.
    pub waiting_at_tick: usize,
    /// Teams serving when the epoch's dispatch tick ran.
    pub serving_at_tick: usize,
    /// Requests picked up during the epoch.
    pub picked_up: u32,
    /// Requests delivered to a hospital during the epoch.
    pub delivered: u32,
}

/// Milliseconds the world spent in each phase of its steps since the
/// phase accumulator was last drained with [`World::take_phases`].
///
/// Measured on the [`PhaseTimer`] installed by [`World::set_time_source`];
/// all zero when no time source is installed (the default) or when the
/// source is simulated time that does not advance during computation —
/// which is exactly what keeps instrumented deterministic runs
/// bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldPhases {
    /// Injecting appearing requests into the waiting queues.
    pub ingest_ms: u64,
    /// Dispatch ticks: building views and running the dispatcher.
    pub dispatch_ms: u64,
    /// Applying plans and moving teams: route planning, replans, pickups.
    pub routing_ms: u64,
}

/// A running simulation: the damaged city, the teams, the open requests.
///
/// Advance it with [`World::step`] (one second) or [`World::run_epoch`]
/// (one dispatch period); feed it requests up front
/// ([`World::schedule_requests`]) or while running
/// ([`World::inject_request`]).
pub struct World<'a> {
    city: &'a City,
    conditions: &'a HourlyConditions,
    config: SimConfig,
    planner: RoutePlanner<'a>,
    /// Reverse-segment lookup, indexed by segment (`NO_U32` when one-way
    /// with no twin): requests on a two-way pair are reachable from either
    /// direction.
    reverse: Vec<u32>,
    /// Scheduled, not-yet-appeared requests, sorted by `appear_s`.
    specs: Vec<(RequestId, RequestSpec)>,
    next_spec: usize,
    requests: RequestArena,
    waiting: WaitingQueues,
    teams: TeamArena,
    serving_per_tick: Vec<(u32, usize)>,
    position_samples: Vec<(u32, Vec<LandmarkId>)>,
    team_served: Vec<Vec<u32>>,
    pending_plans: VecDeque<(u32, DispatchPlan)>,
    dispatch_rounds: u32,
    unroutable_orders: u32,
    now: u32,
    waiting_at_last_tick: usize,
    phase_timer: PhaseTimer,
    phases: WorldPhases,
}

impl<'a> World<'a> {
    /// Builds an empty world (no requests yet) over `city`.
    ///
    /// # Errors
    ///
    /// Returns a [`WorldError`] when the configuration is degenerate, the
    /// city has no hospitals, or the simulated window extends past the
    /// scenario's hourly conditions.
    pub fn new(
        city: &'a City,
        conditions: &'a HourlyConditions,
        config: &SimConfig,
    ) -> Result<Self, WorldError> {
        if config.num_teams == 0 {
            return Err(WorldError::DegenerateConfig("need at least one team"));
        }
        if config.capacity == 0 {
            return Err(WorldError::DegenerateConfig("capacity must be positive"));
        }
        if config.dispatch_period_s == 0 {
            return Err(WorldError::DegenerateConfig(
                "dispatch period must be positive",
            ));
        }
        if city.hospitals.is_empty() {
            return Err(WorldError::NoHospitals);
        }
        if config.start_hour < conditions.first_hour()
            || config.start_hour + config.duration_hours > conditions.hours()
        {
            return Err(WorldError::WindowExceedsConditions);
        }
        let net = &city.network;
        let mut reverse = vec![NO_U32; net.num_segments()];
        {
            let mut by_ends: HashMap<(LandmarkId, LandmarkId), SegmentId> = HashMap::new();
            for seg in net.segments() {
                by_ends.insert((seg.from, seg.to), seg.id);
            }
            for seg in net.segments() {
                if let Some(&r) = by_ends.get(&(seg.to, seg.from)) {
                    reverse[seg.id.index()] = r.0;
                }
            }
        }

        // Teams start distributed round-robin over the hospitals.
        let mut teams = TeamArena::new(config.capacity);
        for i in 0..config.num_teams {
            teams.push(
                city.hospitals[i % city.hospitals.len()],
                VecDeque::new(),
                0.0,
                0.0,
                &[],
                Mission::Standby,
                0,
            );
        }
        let team_served = vec![vec![0u32; config.duration_hours as usize]; config.num_teams];
        Ok(Self {
            city,
            conditions,
            config: config.clone(),
            planner: RoutePlanner::new(net),
            reverse,
            specs: Vec::new(),
            next_spec: 0,
            requests: RequestArena::new(),
            waiting: WaitingQueues::new(net.num_segments()),
            teams,
            serving_per_tick: Vec::new(),
            position_samples: Vec::new(),
            team_served,
            pending_plans: VecDeque::new(),
            dispatch_rounds: 0,
            unroutable_orders: 0,
            now: 0,
            waiting_at_last_tick: 0,
            phase_timer: PhaseTimer::disabled(),
            phases: WorldPhases::default(),
        })
    }

    /// Installs the clock phase breakdowns are measured on. Pass a wall
    /// clock for profiling, a simulated clock for deterministic tests, or
    /// leave uninstalled (the default) for zero measurement overhead.
    pub fn set_time_source(&mut self, timer: PhaseTimer) {
        self.phase_timer = timer;
    }

    /// Drains the per-phase millisecond accumulators (resets them to
    /// zero). Call once per epoch to get an epoch-scoped breakdown.
    pub fn take_phases(&mut self) -> WorldPhases {
        std::mem::take(&mut self.phases)
    }

    /// Publishes the shared route planner's cache counters into an
    /// observability registry under `prefix` (see
    /// [`mobirescue_roadnet::planner::RoutePlanner::publish`]).
    pub fn publish_routing(&self, registry: &mobirescue_obs::Registry, prefix: &str) {
        self.planner.publish(registry, prefix);
    }

    /// Schedules a batch of requests before the world starts (ids are
    /// assigned in slice order, matching the batch [`run`] semantics).
    ///
    /// # Errors
    ///
    /// Returns [`WorldError::UnknownSegment`] when a request references a
    /// segment outside the network; no request is scheduled in that case.
    pub fn schedule_requests(&mut self, requests: &[RequestSpec]) -> Result<(), WorldError> {
        for r in requests {
            if r.segment.index() >= self.city.network.num_segments() {
                return Err(WorldError::UnknownSegment(r.segment));
            }
        }
        for &spec in requests {
            let id = self.requests.push_spec(spec);
            self.specs.push((id, spec));
        }
        // Stable sort keeps id order within one appearance second.
        self.specs[self.next_spec..].sort_by_key(|(_, s)| s.appear_s);
        Ok(())
    }

    /// Injects one request into the running world (the service ingestion
    /// path). A spec whose `appear_s` is already in the past appears at
    /// the next step.
    ///
    /// # Errors
    ///
    /// Returns [`WorldError::UnknownSegment`] for an out-of-range segment
    /// — the event is dropped, the world unharmed.
    pub fn inject_request(&mut self, spec: RequestSpec) -> Result<RequestId, WorldError> {
        if spec.segment.index() >= self.city.network.num_segments() {
            return Err(WorldError::UnknownSegment(spec.segment));
        }
        let id = self.requests.push_spec(spec);
        // Insert in appearance order among the not-yet-appeared.
        let tail = &mut self.specs[self.next_spec..];
        let offset = tail.partition_point(|(_, s)| s.appear_s <= spec.appear_s);
        self.specs.insert(self.next_spec + offset, (id, spec));
        Ok(id)
    }

    /// The current simulation second.
    pub fn now_s(&self) -> u32 {
        self.now
    }

    /// The configured end of the simulated window, seconds.
    pub fn end_s(&self) -> u32 {
        self.config.duration_s()
    }

    /// Index of the epoch the next step belongs to.
    pub fn epoch_index(&self) -> u32 {
        self.now / self.config.dispatch_period_s
    }

    /// Requests currently waiting for pickup. O(1) — the waiting table
    /// keeps a running total.
    pub fn num_waiting(&self) -> usize {
        self.waiting.total()
    }

    /// Requests picked up so far. O(1) — counted incrementally.
    pub fn num_picked_up(&self) -> usize {
        self.requests.picked_count()
    }

    /// Requests delivered to a hospital so far. O(1) — counted
    /// incrementally.
    pub fn num_delivered(&self) -> usize {
        self.requests.delivered_count()
    }

    /// Materializes all request outcomes so far (final only after the
    /// world ends). Allocates — request state lives in a struct-of-arrays
    /// arena; use [`World::num_picked_up`]/[`World::num_delivered`] for
    /// counters.
    pub fn outcomes(&self) -> Vec<RequestOutcome> {
        self.requests.to_outcomes()
    }

    /// Cumulative hit/miss counters of the world's shared route planner
    /// (see [`mobirescue_roadnet::planner::RoutePlanner`]) — surfaced so
    /// the serve runtime can report routing-cache effectiveness.
    pub fn routing_stats(&self) -> mobirescue_roadnet::planner::PlannerStats {
        self.planner.stats()
    }

    /// Advances one second. `extra_latency_s` is added to the
    /// dispatcher's *modeled* latency if this step runs a dispatch tick —
    /// the serve runtime feeds the measured wall-clock computation time
    /// of the dispatcher back in here, so real compute latency delays
    /// order application exactly as the paper's Figure 13 penalizes.
    pub fn step(&mut self, dispatcher: &mut dyn Dispatcher, extra_latency_s: f64) {
        let now = self.now;
        let hour = (self.config.start_hour + now / 3_600).min(self.conditions.hours() - 1);
        let cond = self.conditions.at(hour);
        let net = &self.city.network;

        // 1. Inject appearing requests.
        let t_ingest = self.phase_timer.now_ms();
        while self.next_spec < self.specs.len() && self.specs[self.next_spec].1.appear_s <= now {
            let (id, spec) = self.specs[self.next_spec];
            self.waiting.push(spec.segment, id);
            self.next_spec += 1;
        }
        self.phases.ingest_ms += self.phase_timer.elapsed_since(t_ingest);

        // 1b. Sample team positions (Section IV-C4 training data).
        if let Some(every) = self.config.sample_positions_every_s {
            if every > 0 && now.is_multiple_of(every) {
                self.position_samples
                    .push((now, self.teams.location.clone()));
            }
        }

        // 2. Dispatch tick.
        let t_dispatch = self.phase_timer.now_ms();
        if now.is_multiple_of(self.config.dispatch_period_s) {
            self.serving_per_tick.push((now, self.teams.num_serving()));
            let views: Vec<TeamView> = (0..self.teams.len())
                .map(|i| TeamView {
                    id: TeamId(i as u32),
                    location: self.teams.location[i],
                    onboard: self.teams.onboard_count(i),
                    delivering: self.teams.mission[i] == Mission::ToHospital,
                    standby: self.teams.standby(i),
                })
                .collect();
            self.waiting.compact();
            let mut waiting: Vec<RequestView> = Vec::with_capacity(self.waiting.total());
            for segment in self.waiting.present_sorted() {
                for &id in self.waiting.ids(segment) {
                    waiting.push(RequestView {
                        id,
                        segment,
                        appear_s: self.requests.appear_s(id),
                    });
                }
            }
            waiting.sort_by_key(|r| r.id);
            self.waiting_at_last_tick = waiting.len();
            let state = DispatchState {
                now_s: now,
                hour,
                teams: &views,
                waiting: &waiting,
                net,
                condition: cond,
                planner: &self.planner,
                hospitals: &self.city.hospitals,
                depot: self.city.depot,
            };
            let latency = dispatcher.compute_latency_s(&state).max(0.0) + extra_latency_s.max(0.0);
            let plan = dispatcher.dispatch(&state);
            self.pending_plans
                .push_back((now + latency.ceil() as u32, plan));
            self.dispatch_rounds += 1;
        }
        self.phases.dispatch_ms += self.phase_timer.elapsed_since(t_dispatch);

        // 3. Apply plans whose computation has finished.
        let t_routing = self.phase_timer.now_ms();
        while self.pending_plans.front().is_some_and(|(t, _)| *t <= now) {
            let (_, plan) = self.pending_plans.pop_front().expect("checked non-empty");
            for (i, order) in plan.orders.iter().enumerate().take(self.teams.len()) {
                let Some(order) = order else { continue };
                if self.teams.mission[i] == Mission::ToHospital
                    || self.teams.onboard_count(i) >= self.config.capacity
                {
                    continue; // committed to unloading
                }
                match order {
                    Order::GoToSegment(seg) => {
                        if !set_route_to_segment(&mut self.teams, i, &self.planner, cond, *seg) {
                            self.unroutable_orders += 1;
                        } else {
                            self.teams.mission[i] = Mission::ToSegment(*seg);
                            self.teams.order_start_s[i] = now;
                        }
                    }
                    Order::ReturnToBase => {
                        if self.teams.onboard_count(i) == 0
                            && set_route_to_landmark(
                                &mut self.teams,
                                i,
                                &self.planner,
                                cond,
                                self.city.depot,
                            )
                        {
                            self.teams.mission[i] = Mission::ToBase;
                            self.teams.order_start_s[i] = now;
                        }
                    }
                }
            }
        }

        // 4. Move teams.
        let hour_idx = (now / 3_600) as usize;
        for served_row in &mut self.team_served {
            if served_row.len() <= hour_idx {
                // A service running past the configured window keeps
                // counting; the batch path never grows here.
                served_row.resize(hour_idx + 1, 0);
            }
        }
        for ti in 0..self.teams.len() {
            if self.teams.stall_s[ti] > 0.0 {
                self.teams.stall_s[ti] -= 1.0;
                continue;
            }
            // A team ordered to a hospital it is already at unloads on the
            // spot.
            if self.teams.routes[ti].is_empty() && self.teams.mission[ti] == Mission::ToHospital {
                for &id in self.teams.onboard(ti) {
                    self.requests.record_delivery(id, now);
                }
                self.teams.clear_onboard(ti);
                self.teams.mission[ti] = Mission::Standby;
            }
            let Some(&current) = self.teams.routes[ti].front() else {
                continue;
            };
            if self.teams.seg_remaining_s[ti] <= 0.0 {
                // Entering the segment now.
                match cond.travel_time_s(net.segment(current)) {
                    Some(t) => self.teams.seg_remaining_s[ti] = t,
                    None => {
                        // Flooded since routing: replan toward the mission.
                        if !replan(&mut self.teams, ti, &self.planner, cond, self.city) {
                            abort_mission(&mut self.teams, ti, &self.planner, cond, self.city);
                        }
                        continue;
                    }
                }
            }
            self.teams.seg_remaining_s[ti] -= 1.0;
            if self.teams.seg_remaining_s[ti] > 0.0 {
                continue;
            }
            // Arrived at the end of `current`.
            self.teams.routes[ti].pop_front();
            self.teams.location[ti] = net.segment(current).to;
            pickup_on(
                current,
                &self.reverse,
                &mut self.teams,
                ti,
                now,
                &self.config,
                &mut self.waiting,
                &mut self.requests,
                &mut self.team_served[ti][hour_idx..hour_idx + 1],
            );
            if self.teams.onboard_count(ti) >= self.config.capacity {
                self.teams.routes[ti].clear();
            }
            if self.teams.routes[ti].is_empty() {
                // Mission endpoint reached (or truncated by a full load).
                match self.teams.mission[ti] {
                    Mission::ToSegment(target) => {
                        // Serve the assigned segment even if it could not
                        // be traversed (e.g. the segment itself is flooded)
                        // — but only from one of its endpoints; a route
                        // truncated at the water's edge does not reach the
                        // trapped person.
                        let tgt = net.segment(target);
                        if self.teams.location[ti] == tgt.from || self.teams.location[ti] == tgt.to
                        {
                            pickup_on(
                                target,
                                &self.reverse,
                                &mut self.teams,
                                ti,
                                now,
                                &self.config,
                                &mut self.waiting,
                                &mut self.requests,
                                &mut self.team_served[ti][hour_idx..hour_idx + 1],
                            );
                        }
                        if self.teams.onboard_count(ti) == 0 {
                            self.teams.mission[ti] = Mission::Standby;
                        } else {
                            head_to_hospital(
                                &mut self.teams,
                                ti,
                                &self.planner,
                                cond,
                                self.city,
                                now,
                            );
                        }
                    }
                    Mission::ToHospital => {
                        for &id in self.teams.onboard(ti) {
                            self.requests.record_delivery(id, now);
                        }
                        self.teams.clear_onboard(ti);
                        self.teams.mission[ti] = Mission::Standby;
                    }
                    Mission::ToBase | Mission::Standby => {
                        self.teams.mission[ti] = Mission::Standby;
                    }
                }
            }
        }
        self.phases.routing_ms += self.phase_timer.elapsed_since(t_routing);
        self.now = now + 1;
    }

    /// Advances one full dispatch epoch (`dispatch_period_s` seconds) and
    /// reports what happened. See [`World::step`] for `extra_latency_s`.
    pub fn run_epoch(
        &mut self,
        dispatcher: &mut dyn Dispatcher,
        extra_latency_s: f64,
    ) -> EpochReport {
        let epoch = self.epoch_index();
        let start_s = self.now;
        let picked_before = self.num_picked_up();
        let delivered_before = self.num_delivered();
        let end = (epoch + 1) * self.config.dispatch_period_s;
        let mut first = true;
        while self.now < end {
            self.step(dispatcher, if first { extra_latency_s } else { 0.0 });
            first = false;
        }
        let &(tick_s, serving_at_tick) = self.serving_per_tick.last().unwrap_or(&(start_s, 0));
        debug_assert_eq!(tick_s, start_s);
        EpochReport {
            epoch,
            start_s,
            waiting_at_tick: self.waiting_at_last_tick,
            serving_at_tick,
            picked_up: (self.num_picked_up() - picked_before) as u32,
            delivered: (self.num_delivered() - delivered_before) as u32,
        }
    }

    /// Like [`World::run_epoch`], but deadline-aware: after `primary`
    /// computes the epoch's plan, `over_deadline` is consulted; if it
    /// reports the dispatch deadline blown, the primary's plan is
    /// discarded and `fallback` plans the epoch instead. Returns the
    /// epoch report plus whether the fallback was used.
    ///
    /// The serve runtime drives `over_deadline` from its service clock
    /// (wall time in deployment, simulated time in tests), which is how a
    /// stalled or overly slow policy degrades to a cheap heuristic instead
    /// of delaying the whole epoch barrier. When `over_deadline` never
    /// fires, the epoch is bit-identical to a plain [`World::run_epoch`]
    /// call.
    pub fn run_epoch_with_deadline(
        &mut self,
        primary: &mut dyn Dispatcher,
        fallback: &mut dyn Dispatcher,
        extra_latency_s: f64,
        over_deadline: &mut dyn FnMut() -> bool,
    ) -> (EpochReport, bool) {
        struct DeadlineGate<'d> {
            primary: &'d mut dyn Dispatcher,
            fallback: &'d mut dyn Dispatcher,
            over_deadline: &'d mut dyn FnMut() -> bool,
            degraded: bool,
        }
        impl Dispatcher for DeadlineGate<'_> {
            fn name(&self) -> &str {
                self.primary.name()
            }
            fn compute_latency_s(&self, state: &DispatchState<'_>) -> f64 {
                self.primary.compute_latency_s(state)
            }
            fn dispatch(&mut self, state: &DispatchState<'_>) -> DispatchPlan {
                let plan = self.primary.dispatch(state);
                if (self.over_deadline)() {
                    self.degraded = true;
                    self.fallback.dispatch(state)
                } else {
                    plan
                }
            }
        }
        let mut gate = DeadlineGate {
            primary,
            fallback,
            over_deadline,
            degraded: false,
        };
        let report = self.run_epoch(&mut gate, extra_latency_s);
        (report, gate.degraded)
    }

    /// Consumes the world into the batch outcome shape.
    pub fn into_outcome(self, dispatcher_name: &str) -> SimOutcome {
        SimOutcome {
            dispatcher: dispatcher_name.to_owned(),
            config: self.config,
            requests: self.requests.to_outcomes(),
            serving_per_tick: self.serving_per_tick,
            team_served: self.team_served,
            dispatch_rounds: self.dispatch_rounds,
            unroutable_orders: self.unroutable_orders,
            position_samples: self.position_samples,
        }
    }
}

/// Runs one simulation of `dispatcher` on `city` with the given request
/// schedule.
///
/// # Panics
///
/// Panics if the configuration is degenerate (no teams, zero capacity), the
/// city has no hospitals, a request references an unknown segment, or the
/// simulated window extends past the scenario's hourly conditions.
pub fn run(
    city: &City,
    conditions: &HourlyConditions,
    requests: &[RequestSpec],
    dispatcher: &mut dyn Dispatcher,
    config: &SimConfig,
) -> SimOutcome {
    let mut world = World::new(city, conditions, config).unwrap_or_else(|e| panic!("{e}"));
    world
        .schedule_requests(requests)
        .unwrap_or_else(|e| panic!("{e}"));
    let end = config.duration_s();
    while world.now_s() < end {
        world.step(dispatcher, 0.0);
    }
    world.into_outcome(dispatcher.name())
}

/// Picks up waiting requests on `seg` (and its reverse twin) into team
/// `ti`, recording outcomes. `served_slot` is the team's counter for the
/// current hour.
#[allow(clippy::too_many_arguments)]
fn pickup_on(
    seg: SegmentId,
    reverse: &[u32],
    teams: &mut TeamArena,
    ti: usize,
    now: u32,
    config: &SimConfig,
    waiting: &mut WaitingQueues,
    requests: &mut RequestArena,
    served_slot: &mut [u32],
) {
    let twin = reverse[seg.index()];
    let segs = [Some(seg), (twin != NO_U32).then_some(SegmentId(twin))];
    for s in segs.into_iter().flatten() {
        if !waiting.present(s) {
            continue;
        }
        while teams.onboard_count(ti) < config.capacity {
            let Some(id) = waiting.pop_front(s) else {
                break;
            };
            // Driving delay counts from whichever came later: the team's
            // order or the request's appearance — a pre-positioned team
            // was not yet "driving to" a request that did not exist.
            let start = teams.order_start_s[ti].max(requests.appear_s(id));
            requests.record_pickup(id, now, TeamId(ti as u32), now.saturating_sub(start) as f64);
            teams.push_onboard(ti, id);
            teams.stall_s[ti] += config.pickup_service_s as f64;
            served_slot[0] += 1;
        }
        if waiting.ids(s).is_empty() {
            waiting.remove_entry(s);
        }
    }
}

/// Where rerouting starts and which in-progress segment must be kept: a
/// team midway along a segment finishes it first and replans from its end;
/// an idle team replans from its location.
fn reroute_start(
    teams: &TeamArena,
    ti: usize,
    planner: &RoutePlanner<'_>,
) -> (LandmarkId, VecDeque<SegmentId>) {
    if teams.seg_remaining_s[ti] > 0.0 {
        if let Some(&cur) = teams.routes[ti].front() {
            let mut prefix = VecDeque::new();
            prefix.push_back(cur);
            return (planner.network().segment(cur).to, prefix);
        }
    }
    (teams.location[ti], VecDeque::new())
}

/// Routes `team` to traverse `seg` (or only to `seg.from` when the segment
/// itself is flooded — the assigned pickup still happens on arrival).
///
/// When the target is unreachable on the damaged network, the team instead
/// drives the *pre-disaster* shortest route as far as the first blockage —
/// modelling a damage-unaware dispatcher's vehicles discovering the flood
/// en route. Returns `false` only when the team cannot move toward the
/// target at all.
fn set_route_to_segment(
    teams: &mut TeamArena,
    ti: usize,
    planner: &RoutePlanner<'_>,
    cond: &NetworkCondition,
    seg: SegmentId,
) -> bool {
    let net = planner.network();
    let target_from = net.segment(seg).from;
    let (start, mut route) = reroute_start(teams, ti, planner);
    if let Some(path) = planner.route(cond, start, target_from) {
        route.extend(path.segments);
        if cond.is_operable(seg) {
            route.push_back(seg);
        }
        teams.routes[ti] = route;
        return true;
    }
    // Unreachable on G̃: drive the intact-network route up to the water's
    // edge.
    let Some(path) = planner.free_flow_route(start, target_from) else {
        return false;
    };
    let mut drove_anywhere = false;
    for sid in path.segments {
        if !cond.is_operable(sid) {
            break;
        }
        route.push_back(sid);
        drove_anywhere = true;
    }
    if !drove_anywhere {
        return false;
    }
    teams.routes[ti] = route;
    true
}

/// Routes team `ti` to a landmark. Returns `false` when unreachable.
fn set_route_to_landmark(
    teams: &mut TeamArena,
    ti: usize,
    planner: &RoutePlanner<'_>,
    cond: &NetworkCondition,
    to: LandmarkId,
) -> bool {
    let (start, mut route) = reroute_start(teams, ti, planner);
    let Some(path) = planner.route(cond, start, to) else {
        return false;
    };
    route.extend(path.segments);
    teams.routes[ti] = route;
    true
}

/// Replans the current mission from the team's location. Returns `false`
/// when the mission target is unreachable.
fn replan(
    teams: &mut TeamArena,
    ti: usize,
    planner: &RoutePlanner<'_>,
    cond: &NetworkCondition,
    city: &City,
) -> bool {
    teams.seg_remaining_s[ti] = 0.0;
    teams.routes[ti].clear();
    match teams.mission[ti] {
        Mission::ToSegment(seg) => set_route_to_segment(teams, ti, planner, cond, seg),
        Mission::ToHospital => planner
            .nearest_target(cond, teams.location[ti], &city.hospitals)
            .is_some_and(|(i, _)| {
                set_route_to_landmark(teams, ti, planner, cond, city.hospitals[i])
            }),
        Mission::ToBase => set_route_to_landmark(teams, ti, planner, cond, city.depot),
        Mission::Standby => true,
    }
}

/// Abandons the mission: loaded teams try any hospital, empty teams stand
/// by.
fn abort_mission(
    teams: &mut TeamArena,
    ti: usize,
    planner: &RoutePlanner<'_>,
    cond: &NetworkCondition,
    city: &City,
) {
    teams.routes[ti].clear();
    teams.seg_remaining_s[ti] = 0.0;
    if teams.onboard_count(ti) > 0 {
        if let Some((i, _)) = planner.nearest_target(cond, teams.location[ti], &city.hospitals) {
            if set_route_to_landmark(teams, ti, planner, cond, city.hospitals[i]) {
                teams.mission[ti] = Mission::ToHospital;
                return;
            }
        }
    }
    teams.mission[ti] = Mission::Standby;
}

/// Sends a loaded team to the nearest reachable hospital.
fn head_to_hospital(
    teams: &mut TeamArena,
    ti: usize,
    planner: &RoutePlanner<'_>,
    cond: &NetworkCondition,
    city: &City,
    now: u32,
) {
    teams.seg_remaining_s[ti] = 0.0;
    if let Some((i, _)) = planner.nearest_target(cond, teams.location[ti], &city.hospitals) {
        if set_route_to_landmark(teams, ti, planner, cond, city.hospitals[i]) {
            teams.mission[ti] = Mission::ToHospital;
            teams.order_start_s[ti] = now;
            return;
        }
    }
    teams.mission[ti] = Mission::Standby;
}
