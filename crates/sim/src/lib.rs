//! Discrete-time rescue-team simulation for the MobiRescue reproduction.
//!
//! The paper evaluates dispatchers inside SUMO driven by the Flow RL
//! framework. This crate replaces that stack with a purpose-built simulator
//! at the granularity the paper's metrics are defined on: rescue teams
//! drive shortest routes over the hour-by-hour flood-damaged network, pick
//! up requests on traversed segments (capacity `c`), deliver to the nearest
//! hospital, and receive fresh orders every dispatch period — applied only
//! after the dispatcher's computation latency elapses, which is what
//! separates RL dispatch (<0.5 s) from integer programming (~300 s) in the
//! paper's timeliness results.
//!
//! * [`types`] — configuration, requests, orders, views, outcomes;
//! * [`dispatcher`] — the [`dispatcher::Dispatcher`] trait all evaluated
//!   methods implement, plus a naive nearest-request baseline;
//! * [`engine`] — the second-resolution simulation loop, as a steppable
//!   [`engine::World`] with epoch-boundary snapshot/restore (the batch
//!   [`run`] wraps it);
//! * [`metrics`] — one extraction helper per evaluation figure.

#![warn(missing_docs)]

pub mod dispatcher;
pub mod engine;
pub mod metrics;
pub mod types;

pub use dispatcher::{DispatchState, Dispatcher, NearestRequestDispatcher};
pub use engine::{
    fnv1a_64, fnv1a_64_bytes, open_snapshot, run, seal_snapshot, EpochReport, SimOutcome, World,
    WorldError, WorldPhases,
};
pub use types::{
    DispatchPlan, Order, RequestId, RequestOutcome, RequestSpec, RequestView, SimConfig, TeamId,
    TeamView,
};
