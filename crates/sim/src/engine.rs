//! The discrete-time rescue simulation engine.
//!
//! Replaces the paper's SUMO/Flow stack at the granularity its metrics are
//! defined on: teams drive shortest routes over the hour-by-hour damaged
//! network, pick up requests on the segments they traverse (the paper's
//! reward counts requests "encountered by driving to their destination"),
//! deliver to the nearest hospital when full or done, and receive new
//! orders every dispatch period — delayed by the dispatcher's computation
//! latency, exactly what Figure 13's timeliness metric penalizes.

use crate::dispatcher::{DispatchState, Dispatcher};
use crate::types::{
    DispatchPlan, Order, RequestId, RequestOutcome, RequestSpec, RequestView, SimConfig, TeamId,
    TeamView,
};
use mobirescue_mobility::flow::HourlyConditions;
use mobirescue_roadnet::damage::NetworkCondition;
use mobirescue_roadnet::generator::City;
use mobirescue_roadnet::graph::{LandmarkId, SegmentId};
use mobirescue_roadnet::routing::{Router, TravelCost};
use std::collections::{HashMap, VecDeque};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mission {
    Standby,
    ToSegment(SegmentId),
    ToHospital,
    ToBase,
}

#[derive(Debug)]
struct Team {
    location: LandmarkId,
    route: VecDeque<SegmentId>,
    seg_remaining_s: f64,
    stall_s: f64,
    onboard: Vec<RequestId>,
    mission: Mission,
    order_start_s: u32,
}

impl Team {
    fn standby(&self) -> bool {
        matches!(self.mission, Mission::Standby)
    }

    fn serving(&self) -> bool {
        matches!(self.mission, Mission::ToSegment(_) | Mission::ToHospital)
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Name of the dispatcher that produced this run.
    pub dispatcher: String,
    /// The configuration used.
    pub config: SimConfig,
    /// Final state of every injected request.
    pub requests: Vec<RequestOutcome>,
    /// `(second, serving team count)` sampled at every dispatch tick
    /// (Figure 14's series).
    pub serving_per_tick: Vec<(u32, usize)>,
    /// Requests picked up per team per simulated hour (Figures 9–10).
    pub team_served: Vec<Vec<u32>>,
    /// Number of dispatcher invocations.
    pub dispatch_rounds: u32,
    /// Orders that could not be routed on the damaged network.
    pub unroutable_orders: u32,
    /// Sampled `(second, per-team landmark)` rows when
    /// [`SimConfig::sample_positions_every_s`] is set — the paper's RL
    /// training-data stream of team positions.
    pub position_samples: Vec<(u32, Vec<LandmarkId>)>,
}

/// Runs one simulation of `dispatcher` on `city` with the given request
/// schedule.
///
/// # Panics
///
/// Panics if the configuration is degenerate (no teams, zero capacity), the
/// city has no hospitals, a request references an unknown segment, or the
/// simulated window extends past the scenario's hourly conditions.
pub fn run(
    city: &City,
    conditions: &HourlyConditions,
    requests: &[RequestSpec],
    dispatcher: &mut dyn Dispatcher,
    config: &SimConfig,
) -> SimOutcome {
    assert!(config.num_teams > 0, "need at least one team");
    assert!(config.capacity > 0, "capacity must be positive");
    assert!(config.dispatch_period_s > 0, "dispatch period must be positive");
    assert!(!city.hospitals.is_empty(), "city must have hospitals");
    assert!(
        config.start_hour + config.duration_hours <= conditions.hours(),
        "simulation window exceeds scenario conditions"
    );
    let net = &city.network;
    for r in requests {
        assert!(r.segment.index() < net.num_segments(), "unknown segment in request");
    }
    let router = Router::new(net);

    // Reverse-segment lookup: requests on a one-way pair are reachable from
    // either direction.
    let mut reverse: HashMap<SegmentId, SegmentId> = HashMap::new();
    {
        let mut by_ends: HashMap<(LandmarkId, LandmarkId), SegmentId> = HashMap::new();
        for seg in net.segments() {
            by_ends.insert((seg.from, seg.to), seg.id);
        }
        for seg in net.segments() {
            if let Some(&r) = by_ends.get(&(seg.to, seg.from)) {
                reverse.insert(seg.id, r);
            }
        }
    }

    // Request bookkeeping.
    let mut specs: Vec<(RequestId, RequestSpec)> = requests
        .iter()
        .enumerate()
        .map(|(i, &s)| (RequestId(i as u32), s))
        .collect();
    specs.sort_by_key(|(_, s)| s.appear_s);
    let mut outcomes: Vec<RequestOutcome> = requests
        .iter()
        .enumerate()
        .map(|(i, &spec)| RequestOutcome {
            id: RequestId(i as u32),
            spec,
            picked_up_s: None,
            delivered_s: None,
            team: None,
            driving_delay_s: None,
        })
        .collect();
    let mut waiting_by_segment: HashMap<SegmentId, Vec<RequestId>> = HashMap::new();
    let mut next_spec = 0usize;

    // Teams start distributed round-robin over the hospitals.
    let mut teams: Vec<Team> = (0..config.num_teams)
        .map(|i| Team {
            location: city.hospitals[i % city.hospitals.len()],
            route: VecDeque::new(),
            seg_remaining_s: 0.0,
            stall_s: 0.0,
            onboard: Vec::new(),
            mission: Mission::Standby,
            order_start_s: 0,
        })
        .collect();

    let mut serving_per_tick = Vec::new();
    let mut position_samples = Vec::new();
    let mut team_served = vec![vec![0u32; config.duration_hours as usize]; config.num_teams];
    let mut pending_plans: VecDeque<(u32, DispatchPlan)> = VecDeque::new();
    let mut dispatch_rounds = 0u32;
    let mut unroutable_orders = 0u32;

    let end = config.duration_s();
    for now in 0..end {
        let hour = (config.start_hour + now / 3_600).min(conditions.hours() - 1);
        let cond = conditions.at(hour);

        // 1. Inject appearing requests.
        while next_spec < specs.len() && specs[next_spec].1.appear_s <= now {
            let (id, spec) = specs[next_spec];
            waiting_by_segment.entry(spec.segment).or_default().push(id);
            next_spec += 1;
        }

        // 1b. Sample team positions (Section IV-C4 training data).
        if let Some(every) = config.sample_positions_every_s {
            if every > 0 && now % every == 0 {
                position_samples.push((now, teams.iter().map(|t| t.location).collect()));
            }
        }

        // 2. Dispatch tick.
        if now % config.dispatch_period_s == 0 {
            serving_per_tick.push((now, teams.iter().filter(|t| t.serving()).count()));
            let views: Vec<TeamView> = teams
                .iter()
                .enumerate()
                .map(|(i, t)| TeamView {
                    id: TeamId(i as u32),
                    location: t.location,
                    onboard: t.onboard.len(),
                    delivering: t.mission == Mission::ToHospital,
                    standby: t.standby(),
                })
                .collect();
            let waiting: Vec<RequestView> = waiting_by_segment
                .iter()
                .flat_map(|(&segment, ids)| {
                    ids.iter().map(move |&id| (segment, id))
                })
                .map(|(segment, id)| RequestView {
                    id,
                    segment,
                    appear_s: outcomes[id.index()].spec.appear_s,
                })
                .collect();
            let mut waiting = waiting;
            waiting.sort_by_key(|r| r.id);
            let state = DispatchState {
                now_s: now,
                hour,
                teams: &views,
                waiting: &waiting,
                net,
                condition: cond,
                hospitals: &city.hospitals,
                depot: city.depot,
            };
            let latency = dispatcher.compute_latency_s(&state).max(0.0);
            let plan = dispatcher.dispatch(&state);
            pending_plans.push_back((now + latency.ceil() as u32, plan));
            dispatch_rounds += 1;
        }

        // 3. Apply plans whose computation has finished.
        while pending_plans.front().is_some_and(|(t, _)| *t <= now) {
            let (_, plan) = pending_plans.pop_front().expect("checked non-empty");
            for (i, order) in plan.orders.iter().enumerate().take(teams.len()) {
                let Some(order) = order else { continue };
                let team = &mut teams[i];
                if team.mission == Mission::ToHospital || team.onboard.len() >= config.capacity
                {
                    continue; // committed to unloading
                }
                match order {
                    Order::GoToSegment(seg) => {
                        if !set_route_to_segment(team, &router, cond, *seg) {
                            unroutable_orders += 1;
                        } else {
                            team.mission = Mission::ToSegment(*seg);
                            team.order_start_s = now;
                        }
                    }
                    Order::ReturnToBase => {
                        if team.onboard.is_empty()
                            && set_route_to_landmark(team, &router, cond, city.depot)
                        {
                            team.mission = Mission::ToBase;
                            team.order_start_s = now;
                        }
                    }
                }
            }
        }

        // 4. Move teams.
        for (ti, team) in teams.iter_mut().enumerate() {
            if team.stall_s > 0.0 {
                team.stall_s -= 1.0;
                continue;
            }
            // A team ordered to a hospital it is already at unloads on the
            // spot.
            if team.route.is_empty() && team.mission == Mission::ToHospital {
                for id in team.onboard.drain(..) {
                    outcomes[id.index()].delivered_s = Some(now);
                }
                team.mission = Mission::Standby;
            }
            let Some(&current) = team.route.front() else { continue };
            if team.seg_remaining_s <= 0.0 {
                // Entering the segment now.
                match cond.travel_time_s(net.segment(current)) {
                    Some(t) => team.seg_remaining_s = t,
                    None => {
                        // Flooded since routing: replan toward the mission.
                        if !replan(team, &router, cond, net, city) {
                            abort_mission(team, &router, cond, city);
                        }
                        continue;
                    }
                }
            }
            team.seg_remaining_s -= 1.0;
            if team.seg_remaining_s > 0.0 {
                continue;
            }
            // Arrived at the end of `current`.
            team.route.pop_front();
            team.location = net.segment(current).to;
            let hour_idx = (now / 3_600) as usize;
            pickup_on(
                current,
                &reverse,
                team,
                ti,
                now,
                config,
                &mut waiting_by_segment,
                &mut outcomes,
                &mut team_served[ti][hour_idx..hour_idx + 1],
            );
            if team.onboard.len() >= config.capacity {
                team.route.clear();
            }
            if team.route.is_empty() {
                // Mission endpoint reached (or truncated by a full load).
                match team.mission {
                    Mission::ToSegment(target) => {
                        // Serve the assigned segment even if it could not
                        // be traversed (e.g. the segment itself is flooded)
                        // — but only from one of its endpoints; a route
                        // truncated at the water's edge does not reach the
                        // trapped person.
                        let tgt = net.segment(target);
                        if team.location == tgt.from || team.location == tgt.to {
                            pickup_on(
                                target,
                                &reverse,
                                team,
                                ti,
                                now,
                                config,
                                &mut waiting_by_segment,
                                &mut outcomes,
                                &mut team_served[ti][hour_idx..hour_idx + 1],
                            );
                        }
                        if team.onboard.is_empty() {
                            team.mission = Mission::Standby;
                        } else {
                            head_to_hospital(team, &router, cond, city, now);
                        }
                    }
                    Mission::ToHospital => {
                        for id in team.onboard.drain(..) {
                            outcomes[id.index()].delivered_s = Some(now);
                        }
                        team.mission = Mission::Standby;
                    }
                    Mission::ToBase | Mission::Standby => {
                        team.mission = Mission::Standby;
                    }
                }
            }
        }
    }

    SimOutcome {
        dispatcher: dispatcher.name().to_owned(),
        config: config.clone(),
        requests: outcomes,
        serving_per_tick,
        team_served,
        dispatch_rounds,
        unroutable_orders,
        position_samples,
    }
}

/// Picks up waiting requests on `seg` (and its reverse twin) into `team`,
/// recording outcomes. `served_slot` is the team's counter for the current
/// hour.
#[allow(clippy::too_many_arguments)]
fn pickup_on(
    seg: SegmentId,
    reverse: &HashMap<SegmentId, SegmentId>,
    team: &mut Team,
    team_index: usize,
    now: u32,
    config: &SimConfig,
    waiting_by_segment: &mut HashMap<SegmentId, Vec<RequestId>>,
    outcomes: &mut [RequestOutcome],
    served_slot: &mut [u32],
) {
    let mut segs = vec![seg];
    if let Some(&r) = reverse.get(&seg) {
        segs.push(r);
    }
    for s in segs {
        let Some(queue) = waiting_by_segment.get_mut(&s) else { continue };
        while !queue.is_empty() && team.onboard.len() < config.capacity {
            let id = queue.remove(0);
            let out = &mut outcomes[id.index()];
            out.picked_up_s = Some(now);
            out.team = Some(TeamId(team_index as u32));
            // Driving delay counts from whichever came later: the team's
            // order or the request's appearance — a pre-positioned team
            // was not yet "driving to" a request that did not exist.
            let start = team.order_start_s.max(out.spec.appear_s);
            out.driving_delay_s = Some(now.saturating_sub(start) as f64);
            team.onboard.push(id);
            team.stall_s += config.pickup_service_s as f64;
            served_slot[0] += 1;
        }
        if queue.is_empty() {
            waiting_by_segment.remove(&s);
        }
    }
}

/// Where rerouting starts and which in-progress segment must be kept: a
/// team midway along a segment finishes it first and replans from its end;
/// an idle team replans from its location.
fn reroute_start(team: &Team, router: &Router<'_>) -> (LandmarkId, VecDeque<SegmentId>) {
    if team.seg_remaining_s > 0.0 {
        if let Some(&cur) = team.route.front() {
            let mut prefix = VecDeque::new();
            prefix.push_back(cur);
            return (router.network().segment(cur).to, prefix);
        }
    }
    (team.location, VecDeque::new())
}

/// Routes `team` to traverse `seg` (or only to `seg.from` when the segment
/// itself is flooded — the assigned pickup still happens on arrival).
///
/// When the target is unreachable on the damaged network, the team instead
/// drives the *pre-disaster* shortest route as far as the first blockage —
/// modelling a damage-unaware dispatcher's vehicles discovering the flood
/// en route. Returns `false` only when the team cannot move toward the
/// target at all.
fn set_route_to_segment(
    team: &mut Team,
    router: &Router<'_>,
    cond: &NetworkCondition,
    seg: SegmentId,
) -> bool {
    let net = router.network();
    let target_from = net.segment(seg).from;
    let (start, mut route) = reroute_start(team, router);
    if let Some(path) = router.shortest_path(cond, start, target_from) {
        route.extend(path.segments);
        if cond.is_operable(seg) {
            route.push_back(seg);
        }
        team.route = route;
        return true;
    }
    // Unreachable on G̃: drive the intact-network route up to the water's
    // edge.
    let Some(path) =
        router.shortest_path(&mobirescue_roadnet::routing::FreeFlow, start, target_from)
    else {
        return false;
    };
    let mut drove_anywhere = false;
    for sid in path.segments {
        if !cond.is_operable(sid) {
            break;
        }
        route.push_back(sid);
        drove_anywhere = true;
    }
    if !drove_anywhere {
        return false;
    }
    team.route = route;
    true
}

/// Routes `team` to a landmark. Returns `false` when unreachable.
fn set_route_to_landmark(
    team: &mut Team,
    router: &Router<'_>,
    cond: &NetworkCondition,
    to: LandmarkId,
) -> bool {
    let (start, mut route) = reroute_start(team, router);
    let Some(path) = router.shortest_path(cond, start, to) else {
        return false;
    };
    route.extend(path.segments);
    team.route = route;
    true
}

/// Replans the current mission from the team's location. Returns `false`
/// when the mission target is unreachable.
fn replan(
    team: &mut Team,
    router: &Router<'_>,
    cond: &NetworkCondition,
    _net: &mobirescue_roadnet::graph::RoadNetwork,
    city: &City,
) -> bool {
    team.seg_remaining_s = 0.0;
    team.route.clear();
    match team.mission {
        Mission::ToSegment(seg) => set_route_to_segment(team, router, cond, seg),
        Mission::ToHospital => {
            router
                .nearest_target(cond, team.location, &city.hospitals)
                .is_some_and(|(i, _)| {
                    set_route_to_landmark(team, router, cond, city.hospitals[i])
                })
        }
        Mission::ToBase => set_route_to_landmark(team, router, cond, city.depot),
        Mission::Standby => true,
    }
}

/// Abandons the mission: loaded teams try any hospital, empty teams stand
/// by.
fn abort_mission(team: &mut Team, router: &Router<'_>, cond: &NetworkCondition, city: &City) {
    team.route.clear();
    team.seg_remaining_s = 0.0;
    if !team.onboard.is_empty() {
        if let Some((i, _)) = router.nearest_target(cond, team.location, &city.hospitals) {
            if set_route_to_landmark(team, router, cond, city.hospitals[i]) {
                team.mission = Mission::ToHospital;
                return;
            }
        }
    }
    team.mission = Mission::Standby;
}

/// Sends a loaded team to the nearest reachable hospital.
fn head_to_hospital(
    team: &mut Team,
    router: &Router<'_>,
    cond: &NetworkCondition,
    city: &City,
    now: u32,
) {
    team.seg_remaining_s = 0.0;
    if let Some((i, _)) = router.nearest_target(cond, team.location, &city.hospitals) {
        if set_route_to_landmark(team, router, cond, city.hospitals[i]) {
            team.mission = Mission::ToHospital;
            team.order_start_s = now;
            return;
        }
    }
    team.mission = Mission::Standby;
}
