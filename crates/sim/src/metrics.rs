//! Metric extraction from simulation outcomes — one helper per evaluation
//! figure (Section V-B's metric list).

use crate::engine::SimOutcome;
use mobirescue_mobility::stats::Cdf;

impl SimOutcome {
    /// Total requests picked up.
    pub fn total_served(&self) -> usize {
        self.requests
            .iter()
            .filter(|r| r.picked_up_s.is_some())
            .count()
    }

    /// Total requests picked up within the timeliness bound.
    pub fn total_timely_served(&self) -> usize {
        self.requests
            .iter()
            .filter(|r| r.timely_served(self.config.timely_threshold_s))
            .count()
    }

    /// Figure 9: timely served requests per simulated hour (by pickup
    /// time).
    pub fn timely_served_per_hour(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.config.duration_hours as usize];
        for r in &self.requests {
            if r.timely_served(self.config.timely_threshold_s) {
                let h = (r.picked_up_s.expect("timely implies served") / 3_600) as usize;
                if h < out.len() {
                    out[h] += 1;
                }
            }
        }
        out
    }

    /// Per-team total served counts.
    pub fn served_per_team(&self) -> Vec<f64> {
        self.team_served
            .iter()
            .map(|hours| hours.iter().sum::<u32>() as f64)
            .collect()
    }

    /// Figure 10: per-team *timely* served counts (the paper measures "the
    /// numbers of timely served rescue requests of all the rescue teams").
    pub fn timely_served_per_team(&self) -> Vec<f64> {
        let mut counts = vec![0u32; self.config.num_teams];
        for r in &self.requests {
            if r.timely_served(self.config.timely_threshold_s) {
                if let Some(team) = r.team {
                    counts[team.index()] += 1;
                }
            }
        }
        counts.into_iter().map(f64::from).collect()
    }

    /// Figure 10 as a CDF.
    pub fn served_per_team_cdf(&self) -> Cdf {
        Cdf::new(self.timely_served_per_team())
    }

    /// Figure 11: average driving delay (seconds) of requests served in
    /// each hour; `None` for hours without served requests.
    pub fn avg_driving_delay_per_hour(&self) -> Vec<Option<f64>> {
        let hours = self.config.duration_hours as usize;
        let mut sum = vec![0.0; hours];
        let mut count = vec![0usize; hours];
        for r in &self.requests {
            if let (Some(p), Some(d)) = (r.picked_up_s, r.driving_delay_s) {
                let h = (p / 3_600) as usize;
                if h < hours {
                    sum[h] += d;
                    count[h] += 1;
                }
            }
        }
        sum.into_iter()
            .zip(count)
            .map(|(s, c)| (c > 0).then(|| s / c as f64))
            .collect()
    }

    /// Figure 12: CDF of driving delays (seconds) over all served requests.
    pub fn driving_delay_cdf(&self) -> Cdf {
        Cdf::new(
            self.requests
                .iter()
                .filter_map(|r| r.driving_delay_s)
                .collect(),
        )
    }

    /// Figure 13: CDF of rescue timeliness (seconds) over all served
    /// requests (dispatch computation latency is already embedded, since
    /// orders apply only after it elapses).
    pub fn timeliness_cdf(&self) -> Cdf {
        Cdf::new(
            self.requests
                .iter()
                .filter_map(|r| r.timeliness_s())
                .map(|t| t as f64)
                .collect(),
        )
    }

    /// Figure 14: number of serving teams per dispatch slot.
    pub fn serving_teams_per_slot(&self) -> &[(u32, usize)] {
        &self.serving_per_tick
    }

    /// Figure 14 aggregated per hour (mean over the hour's slots).
    pub fn avg_serving_teams_per_hour(&self) -> Vec<f64> {
        let hours = self.config.duration_hours as usize;
        let mut sum = vec![0.0; hours];
        let mut count = vec![0usize; hours];
        for &(t, n) in &self.serving_per_tick {
            let h = (t / 3_600) as usize;
            if h < hours {
                sum[h] += n as f64;
                count[h] += 1;
            }
        }
        sum.into_iter()
            .zip(count)
            .map(|(s, c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect()
    }

    /// Fraction of requests served.
    pub fn service_rate(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.total_served() as f64 / self.requests.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{RequestId, RequestOutcome, RequestSpec, SimConfig, TeamId};
    use mobirescue_roadnet::graph::SegmentId;

    fn outcome() -> SimOutcome {
        let mk = |id: u32, appear: u32, picked: Option<u32>, delay: Option<f64>| RequestOutcome {
            id: RequestId(id),
            spec: RequestSpec {
                appear_s: appear,
                segment: SegmentId(0),
            },
            picked_up_s: picked,
            delivered_s: picked.map(|p| p + 600),
            team: picked.map(|_| TeamId(0)),
            driving_delay_s: delay,
        };
        SimOutcome {
            dispatcher: "test".into(),
            config: SimConfig::small(0),
            requests: vec![
                mk(0, 0, Some(600), Some(500.0)),       // timely, hour 0
                mk(1, 0, Some(4_000), Some(3_800.0)),   // late, hour 1
                mk(2, 100, None, None),                 // unserved
                mk(3, 3_700, Some(3_900), Some(100.0)), // timely, hour 1
            ],
            serving_per_tick: vec![(0, 2), (300, 4), (3_600, 6)],
            team_served: vec![vec![1, 2, 0, 0], vec![0, 1, 0, 0]],
            dispatch_rounds: 3,
            unroutable_orders: 0,
            position_samples: Vec::new(),
        }
    }

    #[test]
    fn totals() {
        let o = outcome();
        assert_eq!(o.total_served(), 3);
        assert_eq!(o.total_timely_served(), 2);
        assert!((o.service_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn per_hour_series() {
        let o = outcome();
        let hourly = o.timely_served_per_hour();
        assert_eq!(hourly[0], 1);
        assert_eq!(hourly[1], 1);
        assert_eq!(hourly[2], 0);
        let delays = o.avg_driving_delay_per_hour();
        assert_eq!(delays[0], Some(500.0));
        assert_eq!(delays[1], Some((3_800.0 + 100.0) / 2.0));
        assert_eq!(delays[2], None);
    }

    #[test]
    fn team_and_serving_series() {
        let o = outcome();
        assert_eq!(o.served_per_team(), vec![3.0, 1.0]);
        // Timely counts come from request outcomes: requests 0 and 3 were
        // timely, both picked up by team 0; the config has 6 teams.
        let timely = o.timely_served_per_team();
        assert_eq!(timely.len(), o.config.num_teams);
        assert_eq!(timely[0], 2.0);
        assert!(timely[1..].iter().all(|&n| n == 0.0));
        assert_eq!(o.served_per_team_cdf().len(), o.config.num_teams);
        let per_hour = o.avg_serving_teams_per_hour();
        assert_eq!(per_hour[0], 3.0); // (2 + 4) / 2
        assert_eq!(per_hour[1], 6.0);
    }

    #[test]
    fn cdfs_cover_served_requests_only() {
        let o = outcome();
        assert_eq!(o.driving_delay_cdf().len(), 3);
        assert_eq!(o.timeliness_cdf().len(), 3);
        assert_eq!(o.timeliness_cdf().min(), Some(200.0));
    }
}
