//! Failure injection: the network degrades *while* teams are driving.
//! The engine must replan, strand gracefully, and never violate its
//! conservation laws.

use mobirescue_mobility::flow::HourlyConditions;
use mobirescue_roadnet::damage::NetworkCondition;
use mobirescue_roadnet::generator::{City, CityConfig};
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_sim::dispatcher::NearestRequestDispatcher;
use mobirescue_sim::types::{RequestSpec, SimConfig};

fn city() -> City {
    CityConfig::small().build(17)
}

/// Hour 0 pristine; from hour 1 on, a widening band of blocked segments
/// sweeps the city.
fn degrading_conditions(city: &City, hours: u32) -> HourlyConditions {
    let conditions = (0..hours)
        .map(|h| {
            let mut cond = NetworkCondition::pristine(&city.network);
            for seg in city.network.segments() {
                let mid = city.network.segment_midpoint(seg.id);
                let (_, north) = mid.local_xy_m(city.center);
                let band_half_width = 600.0 * h as f64;
                if north.abs() <= band_half_width {
                    cond.block(seg.id);
                }
            }
            cond
        })
        .collect();
    HourlyConditions::from_conditions(conditions)
}

#[test]
fn engine_survives_progressive_damage() {
    let city = city();
    let conditions = degrading_conditions(&city, 6);
    let num_segments = city.network.num_segments() as u32;
    let requests: Vec<RequestSpec> = (0..30)
        .map(|i| RequestSpec {
            appear_s: i * 550,
            segment: SegmentId((i * 29) % num_segments),
        })
        .collect();
    let mut config = SimConfig::small(0);
    config.duration_hours = 6;
    let outcome = mobirescue_sim::run(
        &city,
        &conditions,
        &requests,
        &mut NearestRequestDispatcher::default(),
        &config,
    );
    // No panics, invariants hold, and the early (pristine) phase serves
    // some requests while the late (severed) phase cannot serve them all.
    assert!(
        outcome.total_served() > 0,
        "nothing served before the damage"
    );
    assert!(
        outcome.total_served() < requests.len(),
        "progressive damage should strand some requests"
    );
    for r in &outcome.requests {
        if let Some(p) = r.picked_up_s {
            assert!(p >= r.spec.appear_s);
        }
    }
}

#[test]
fn teams_boxed_in_by_water_do_not_wedge_the_engine() {
    let city = city();
    // Hour 0 pristine; hour 1+ everything blocked — teams freeze wherever
    // they are.
    let mut all_blocked = NetworkCondition::pristine(&city.network);
    for sid in city.network.segment_ids() {
        all_blocked.block(sid);
    }
    let conditions = HourlyConditions::from_conditions(vec![
        NetworkCondition::pristine(&city.network),
        all_blocked.clone(),
        all_blocked.clone(),
        all_blocked,
    ]);
    let num_segments = city.network.num_segments() as u32;
    let requests: Vec<RequestSpec> = (0..12)
        .map(|i| RequestSpec {
            appear_s: 3_700 + i * 60, // appear after the flood hits
            segment: SegmentId((i * 43) % num_segments),
        })
        .collect();
    let mut config = SimConfig::small(0);
    config.duration_hours = 4;
    let outcome = mobirescue_sim::run(
        &city,
        &conditions,
        &requests,
        &mut NearestRequestDispatcher::default(),
        &config,
    );
    // Every order is unroutable once the world is water; the run must
    // still terminate with all requests unserved.
    assert_eq!(outcome.total_served(), 0);
    assert!(outcome.dispatch_rounds >= 40);
}

#[test]
fn recovery_restores_service() {
    let city = city();
    // Blocked for the first two hours, pristine afterwards.
    let mut blocked = NetworkCondition::pristine(&city.network);
    for sid in city.network.segment_ids() {
        blocked.block(sid);
    }
    let pristine = NetworkCondition::pristine(&city.network);
    let conditions = HourlyConditions::from_conditions(vec![
        blocked.clone(),
        blocked,
        pristine.clone(),
        pristine.clone(),
        pristine,
    ]);
    let num_segments = city.network.num_segments() as u32;
    let requests: Vec<RequestSpec> = (0..10)
        .map(|i| RequestSpec {
            appear_s: 60 + i * 120,
            segment: SegmentId((i * 31) % num_segments),
        })
        .collect();
    let mut config = SimConfig::small(0);
    config.duration_hours = 5;
    let outcome = mobirescue_sim::run(
        &city,
        &conditions,
        &requests,
        &mut NearestRequestDispatcher::default(),
        &config,
    );
    // All requests appeared during the blockade but teams serve them after
    // the waters recede.
    assert!(
        outcome.total_served() >= 8,
        "only {}/10 served after recovery",
        outcome.total_served()
    );
    for r in &outcome.requests {
        if let Some(p) = r.picked_up_s {
            assert!(p >= 2 * 3_600, "{} picked up during the blockade", r.id);
        }
    }
}
