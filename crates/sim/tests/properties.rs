//! Property-based tests for the simulation engine: conservation laws that
//! must hold for any request schedule.

use mobirescue_disaster::hurricane::Hurricane;
use mobirescue_disaster::scenario::DisasterScenario;
use mobirescue_mobility::flow::HourlyConditions;
use mobirescue_roadnet::generator::CityConfig;
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_sim::dispatcher::NearestRequestDispatcher;
use mobirescue_sim::types::{RequestSpec, SimConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

struct Fixture {
    city: mobirescue_roadnet::generator::City,
    conditions: HourlyConditions,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let city = CityConfig::small().build(99);
        let scenario = DisasterScenario::new(&city, Hurricane::florence(), 99);
        let conditions = HourlyConditions::compute(&city.network, &scenario);
        Fixture { city, conditions }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any request schedule: outcomes are causal (pickup ≥ appear,
    /// delivery ≥ pickup), per-team counters match, serving counts are
    /// bounded by the fleet, and every request appears exactly once.
    #[test]
    fn engine_conservation_laws(
        specs in prop::collection::vec((0u32..3 * 3_600, 0u32..500), 1..25),
        teams in 1usize..5,
        capacity in 1usize..4,
    ) {
        let f = fixture();
        let num_segments = f.city.network.num_segments() as u32;
        let requests: Vec<RequestSpec> = specs
            .iter()
            .map(|&(appear_s, seg)| RequestSpec { appear_s, segment: SegmentId(seg % num_segments) })
            .collect();
        let mut config = SimConfig::small(24);
        config.num_teams = teams;
        config.capacity = capacity;
        let outcome = mobirescue_sim::run(
            &f.city,
            &f.conditions,
            &requests,
            &mut NearestRequestDispatcher::default(),
            &config,
        );
        prop_assert_eq!(outcome.requests.len(), requests.len());
        for r in &outcome.requests {
            if let Some(p) = r.picked_up_s {
                prop_assert!(p >= r.spec.appear_s);
                prop_assert!(r.team.is_some());
                let delay = r.driving_delay_s.expect("served requests carry a delay");
                prop_assert!(delay >= 0.0);
                if let Some(d) = r.delivered_s {
                    prop_assert!(d >= p);
                }
            } else {
                prop_assert!(r.team.is_none() && r.delivered_s.is_none());
            }
        }
        let counted: u32 = outcome.team_served.iter().flatten().sum();
        prop_assert_eq!(counted as usize, outcome.total_served());
        for &(_, n) in outcome.serving_teams_per_slot() {
            prop_assert!(n <= teams);
        }
        prop_assert!(outcome.total_timely_served() <= outcome.total_served());
    }

    /// Determinism: identical inputs give identical outcomes.
    #[test]
    fn engine_is_deterministic(
        specs in prop::collection::vec((0u32..2 * 3_600, 0u32..500), 1..10),
    ) {
        let f = fixture();
        let num_segments = f.city.network.num_segments() as u32;
        let requests: Vec<RequestSpec> = specs
            .iter()
            .map(|&(appear_s, seg)| RequestSpec { appear_s, segment: SegmentId(seg % num_segments) })
            .collect();
        let config = SimConfig::small(24);
        let a = mobirescue_sim::run(
            &f.city, &f.conditions, &requests, &mut NearestRequestDispatcher::default(), &config,
        );
        let b = mobirescue_sim::run(
            &f.city, &f.conditions, &requests, &mut NearestRequestDispatcher::default(), &config,
        );
        prop_assert_eq!(a.requests, b.requests);
        prop_assert_eq!(a.serving_per_tick, b.serving_per_tick);
    }
}
