//! Property tests for the `mrworld 1` snapshot format: any truncation or
//! bit-flip of a sealed snapshot must be *rejected* on restore — a typed
//! `Err`, never a panic and never a silent success.

use mobirescue_disaster::hurricane::Hurricane;
use mobirescue_disaster::scenario::DisasterScenario;
use mobirescue_mobility::flow::HourlyConditions;
use mobirescue_roadnet::generator::{City, CityConfig};
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_sim::dispatcher::NearestRequestDispatcher;
use mobirescue_sim::engine::World;
use mobirescue_sim::types::{RequestSpec, SimConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

struct Fixture {
    city: City,
    conditions: HourlyConditions,
    snapshot: String,
}

/// A mid-run world snapshot with requests waiting, teams en route, and
/// metric accumulators populated — every record kind the format emits.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let city = CityConfig::small().build(7);
        let disaster = DisasterScenario::new(&city, Hurricane::florence(), 7);
        let conditions = HourlyConditions::compute(&city.network, &disaster);
        let n = city.network.num_segments() as u32;
        let requests: Vec<RequestSpec> = (0..12)
            .map(|i| RequestSpec {
                appear_s: i * 211,
                segment: SegmentId((i * 41) % n),
            })
            .collect();
        let config = SimConfig::small(0);
        let mut world = World::new(&city, &conditions, &config).expect("world builds");
        world.schedule_requests(&requests).expect("valid requests");
        let mut d = NearestRequestDispatcher::default();
        for _ in 0..3 {
            world.run_epoch(&mut d, 0.0);
        }
        let snapshot = world.snapshot_text();
        Fixture {
            city,
            conditions,
            snapshot,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating a sealed snapshot anywhere strictly before its end must
    /// fail restore: the checksum trailer no longer covers the body.
    #[test]
    fn truncated_snapshot_never_restores(cut in 0usize..4096) {
        let f = fixture();
        let cut = cut % f.snapshot.len();
        let mut truncated = f.snapshot.clone();
        truncated.truncate(cut);
        let result = World::restore_text(&f.city, &f.conditions, &truncated);
        prop_assert!(
            result.is_err(),
            "snapshot truncated to {cut} bytes was accepted"
        );
    }

    /// Flipping any bit of any byte must fail restore — either the body no
    /// longer hashes to the recorded sum, or the trailer itself is broken.
    #[test]
    fn bit_flipped_snapshot_never_restores(pos in 0usize..4096, bit in 0u32..8) {
        let f = fixture();
        let pos = pos % f.snapshot.len();
        let mut bytes = f.snapshot.clone().into_bytes();
        bytes[pos] ^= 1u8 << bit;
        // A flip can leave invalid UTF-8; restore takes &str, so model the
        // caller that read the file lossily.
        let corrupt = String::from_utf8_lossy(&bytes).into_owned();
        let result = World::restore_text(&f.city, &f.conditions, &corrupt);
        prop_assert!(
            result.is_err(),
            "snapshot with bit {bit} of byte {pos} flipped was accepted"
        );
    }

    /// Arbitrary text (not derived from a snapshot at all) never panics
    /// the parser.
    #[test]
    fn arbitrary_text_never_panics(bytes in prop::collection::vec(9u8..127, 0..300)) {
        let f = fixture();
        let text = String::from_utf8(bytes).expect("ASCII bytes");
        let _ = World::restore_text(&f.city, &f.conditions, &text);
    }
}
