//! End-to-end tests of the simulation engine.

use mobirescue_disaster::hurricane::Hurricane;
use mobirescue_disaster::scenario::DisasterScenario;
use mobirescue_mobility::flow::HourlyConditions;
use mobirescue_roadnet::generator::{City, CityConfig};
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_sim::dispatcher::{DispatchState, Dispatcher, NearestRequestDispatcher};
use mobirescue_sim::types::{DispatchPlan, RequestSpec, SimConfig};
use mobirescue_sim::{run, SimOutcome};

fn setup() -> (City, HourlyConditions) {
    let city = CityConfig::small().build(13);
    let scenario = DisasterScenario::new(&city, Hurricane::florence(), 13);
    let conds = HourlyConditions::compute(&city.network, &scenario);
    (city, conds)
}

fn spread_requests(city: &City, n: u32, window_s: u32) -> Vec<RequestSpec> {
    let num_segs = city.network.num_segments() as u32;
    (0..n)
        .map(|i| RequestSpec {
            appear_s: i * window_s / n,
            segment: SegmentId((i * 37) % num_segs),
        })
        .collect()
}

#[test]
fn serves_requests_before_the_disaster() {
    let (city, conds) = setup();
    let config = SimConfig::small(24); // day 1: pristine network
    let requests = spread_requests(&city, 20, 2 * 3_600);
    let outcome = run(
        &city,
        &conds,
        &requests,
        &mut NearestRequestDispatcher::default(),
        &config,
    );
    assert!(
        outcome.total_served() >= 18,
        "only {}/20 served on a pristine network",
        outcome.total_served()
    );
    assert_eq!(outcome.unroutable_orders, 0);
    assert!(outcome.dispatch_rounds >= 40, "4 h at 5-min period");
}

#[test]
fn outcome_invariants_hold() {
    let (city, conds) = setup();
    let config = SimConfig::small(24);
    let requests = spread_requests(&city, 25, 3 * 3_600);
    let outcome = run(
        &city,
        &conds,
        &requests,
        &mut NearestRequestDispatcher::default(),
        &config,
    );
    for r in &outcome.requests {
        if let Some(p) = r.picked_up_s {
            assert!(p >= r.spec.appear_s, "{} picked up before appearing", r.id);
            assert!(r.team.is_some());
            assert!(r.driving_delay_s.is_some());
            assert!(r.driving_delay_s.unwrap() >= 0.0);
            if let Some(d) = r.delivered_s {
                // Equality happens when a pickup occurs on the hospital's
                // own doorstep segment.
                assert!(d >= p, "{} delivered before pickup", r.id);
            }
        } else {
            assert!(r.team.is_none());
            assert!(r.delivered_s.is_none());
        }
    }
    // Per-team served counters agree with request outcomes.
    let by_counter: u32 = outcome.team_served.iter().flatten().sum();
    assert_eq!(by_counter as usize, outcome.total_served());
    // Every picked-up request is eventually delivered (the run is long
    // enough) or still on board at the end — never duplicated.
    let served_ids: Vec<_> = outcome
        .requests
        .iter()
        .filter(|r| r.picked_up_s.is_some())
        .map(|r| r.id)
        .collect();
    let unique: std::collections::HashSet<_> = served_ids.iter().collect();
    assert_eq!(unique.len(), served_ids.len());
}

#[test]
fn deterministic_across_runs() {
    let (city, conds) = setup();
    let config = SimConfig::small(24);
    let requests = spread_requests(&city, 15, 2 * 3_600);
    let a = run(
        &city,
        &conds,
        &requests,
        &mut NearestRequestDispatcher::default(),
        &config,
    );
    let b = run(
        &city,
        &conds,
        &requests,
        &mut NearestRequestDispatcher::default(),
        &config,
    );
    assert_eq!(a.requests, b.requests);
    assert_eq!(a.serving_per_tick, b.serving_per_tick);
}

/// A dispatcher that wraps another and adds a large fixed latency —
/// verifying that computation delay degrades timeliness (the Figure 13
/// mechanism).
struct Slow<D>(D, f64);

impl<D: Dispatcher> Dispatcher for Slow<D> {
    fn name(&self) -> &str {
        "Slow"
    }
    fn compute_latency_s(&self, _state: &DispatchState<'_>) -> f64 {
        self.1
    }
    fn dispatch(&mut self, state: &DispatchState<'_>) -> DispatchPlan {
        self.0.dispatch(state)
    }
}

#[test]
fn dispatch_latency_hurts_timeliness() {
    let (city, conds) = setup();
    let config = SimConfig::small(24);
    let requests = spread_requests(&city, 20, 2 * 3_600);
    let fast = run(
        &city,
        &conds,
        &requests,
        &mut NearestRequestDispatcher::default(),
        &config,
    );
    let slow = run(
        &city,
        &conds,
        &requests,
        &mut Slow(NearestRequestDispatcher::default(), 300.0),
        &config,
    );
    let fast_med = fast.timeliness_cdf().quantile(0.5);
    let slow_med = slow.timeliness_cdf().quantile(0.5);
    assert!(
        slow_med > fast_med,
        "300 s latency should slow the median rescue: fast {fast_med}, slow {slow_med}"
    );
}

#[test]
fn flood_reduces_service() {
    let (city, conds) = setup();
    // Same request shapes, one run before the disaster and one at the
    // flood peak.
    let requests = spread_requests(&city, 30, 3 * 3_600);
    let before = run(
        &city,
        &conds,
        &requests,
        &mut NearestRequestDispatcher::default(),
        &SimConfig::small(24),
    );
    let peak_hour = Hurricane::florence().timeline.peak_hour() + 24;
    let during = run(
        &city,
        &conds,
        &requests,
        &mut NearestRequestDispatcher::default(),
        &SimConfig::small(peak_hour),
    );
    assert!(
        during.total_served() <= before.total_served(),
        "flooding cannot increase service: before {}, during {}",
        before.total_served(),
        during.total_served()
    );
}

#[test]
fn teams_respect_capacity() {
    let (city, conds) = setup();
    let mut config = SimConfig::small(24);
    config.num_teams = 1;
    config.capacity = 2;
    // Many requests on one segment: a single team of capacity 2 must make
    // several hospital round-trips.
    let seg = SegmentId(40);
    let requests: Vec<RequestSpec> = (0..6)
        .map(|_| RequestSpec {
            appear_s: 10,
            segment: seg,
        })
        .collect();
    let outcome = run(
        &city,
        &conds,
        &requests,
        &mut NearestRequestDispatcher::default(),
        &config,
    );
    let mut pickups: Vec<u32> = outcome
        .requests
        .iter()
        .filter_map(|r| r.picked_up_s)
        .collect();
    pickups.sort_unstable();
    assert!(pickups.len() >= 4, "only {} pickups", pickups.len());
    // At most 2 pickups can share (approximately) the same pass; the third
    // must wait for a hospital round-trip.
    assert!(
        pickups[2] > pickups[1] + 120,
        "third pickup {} too close to second {} for capacity 2",
        pickups[2],
        pickups[1]
    );
}

#[test]
fn serving_team_counts_are_bounded() {
    let (city, conds) = setup();
    let config = SimConfig::small(24);
    let requests = spread_requests(&city, 40, 3 * 3_600);
    let outcome: SimOutcome = run(
        &city,
        &conds,
        &requests,
        &mut NearestRequestDispatcher::default(),
        &config,
    );
    for &(_, n) in outcome.serving_teams_per_slot() {
        assert!(n <= config.num_teams);
    }
}

#[test]
fn position_sampling_records_training_data() {
    let (city, conds) = setup();
    let mut config = SimConfig::small(24);
    config.duration_hours = 2;
    config.sample_positions_every_s = Some(60);
    let requests = spread_requests(&city, 10, 3_600);
    let outcome = run(
        &city,
        &conds,
        &requests,
        &mut NearestRequestDispatcher::default(),
        &config,
    );
    // One sample per minute for two hours.
    assert_eq!(outcome.position_samples.len(), 120);
    for (t, row) in &outcome.position_samples {
        assert_eq!(*t % 60, 0);
        assert_eq!(row.len(), config.num_teams);
    }
    // Teams actually move between some samples.
    let first = &outcome.position_samples[0].1;
    let moved = outcome.position_samples.iter().any(|(_, row)| row != first);
    assert!(moved, "no team ever moved");
}

#[test]
fn zero_requests_is_a_quiet_day() {
    let (city, conds) = setup();
    let config = SimConfig::small(24);
    let outcome = run(
        &city,
        &conds,
        &[],
        &mut NearestRequestDispatcher::default(),
        &config,
    );
    assert_eq!(outcome.total_served(), 0);
    assert!(outcome.requests.is_empty());
    assert!(outcome.dispatch_rounds > 0, "dispatcher still ticks");
    // Nobody has anything to do.
    for &(_, n) in outcome.serving_teams_per_slot() {
        assert_eq!(n, 0);
    }
}
