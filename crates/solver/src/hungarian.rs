//! Exact minimum-cost assignment (Hungarian algorithm, potentials /
//! Jonker–Volgenant formulation, O(n²m)).
//!
//! Both baseline dispatchers (*Schedule* \[5\] and *Rescue* \[8\]) periodically
//! solve an integer program that is assignment-shaped: match rescue teams to
//! (predicted) request positions minimizing total driving delay. This solver
//! computes that optimum exactly.

use serde::{Deserialize, Serialize};

/// Cost value treated as "this pairing is impossible" (e.g. the request is
/// unreachable on the damaged network).
pub const FORBIDDEN: f64 = 1e15;

/// A dense rows × cols cost matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl CostMatrix {
    /// Creates a matrix filled with `fill`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize, fill: f64) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![fill; rows * cols],
        }
    }

    /// Builds a matrix from a function of `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::new(rows, cols, 0.0);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The cost at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// Sets the cost at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col] = value;
    }
}

/// Result of an assignment solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// For each row, the column it was matched to (`None` when the row's
    /// only options were [`FORBIDDEN`] or there were more rows than
    /// columns).
    pub row_to_col: Vec<Option<usize>>,
    /// Total cost of the realized (non-forbidden) pairs.
    pub total_cost: f64,
}

impl Assignment {
    /// Number of rows actually matched.
    pub fn matched(&self) -> usize {
        self.row_to_col.iter().filter(|c| c.is_some()).count()
    }
}

/// Solves the min-cost assignment for `cost`, matching every row when
/// `rows ≤ cols` (up to forbidden pairs). With more rows than columns the
/// cheapest `cols` rows are matched.
#[allow(clippy::needless_range_loop)] // classic index-based formulation
pub fn min_cost_assignment(cost: &CostMatrix) -> Assignment {
    if cost.rows() > cost.cols() {
        // Transpose, solve, and invert the mapping.
        let t = CostMatrix::from_fn(cost.cols(), cost.rows(), |r, c| cost.get(c, r));
        let sol = min_cost_assignment(&t);
        let mut row_to_col = vec![None; cost.rows()];
        for (col, assigned_row) in sol.row_to_col.iter().enumerate() {
            if let Some(r) = assigned_row {
                row_to_col[*r] = Some(col);
            }
        }
        return Assignment {
            row_to_col,
            total_cost: sol.total_cost,
        };
    }
    let n = cost.rows();
    let m = cost.cols();
    // 1-based potentials formulation.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[col] = row assigned to col (0 = none)
    let mut way = vec![0usize; m + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost.get(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut row_to_col = vec![None; n];
    let mut total_cost = 0.0;
    for j in 1..=m {
        if p[j] != 0 {
            let r = p[j] - 1;
            let c = cost.get(r, j - 1);
            if c < FORBIDDEN / 2.0 {
                row_to_col[r] = Some(j - 1);
                total_cost += c;
            }
        }
    }
    Assignment {
        row_to_col,
        total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Brute-force optimum over all permutations (square matrices only).
    fn brute_force(cost: &CostMatrix) -> f64 {
        fn perms(n: usize) -> Vec<Vec<usize>> {
            if n == 1 {
                return vec![vec![0]];
            }
            let mut out = Vec::new();
            for p in perms(n - 1) {
                for i in 0..n {
                    let mut q: Vec<usize> =
                        p.iter().map(|&x| if x >= i { x + 1 } else { x }).collect();
                    q.push(i);
                    out.push(q);
                }
            }
            out
        }
        perms(cost.rows())
            .into_iter()
            .map(|perm| {
                perm.iter()
                    .enumerate()
                    .map(|(r, &c)| cost.get(r, c))
                    .sum::<f64>()
            })
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn solves_a_known_instance() {
        // Classic 3x3 example: optimum is 5 (0→1, 1→0, 2→2).
        let cost = CostMatrix::from_fn(3, 3, |r, c| {
            [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]][r][c]
        });
        let sol = min_cost_assignment(&cost);
        assert_eq!(sol.total_cost, 5.0);
        assert_eq!(sol.row_to_col, vec![Some(1), Some(0), Some(2)]);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(17);
        for trial in 0..30 {
            let n = 2 + (trial % 5);
            let cost = CostMatrix::from_fn(n, n, |_, _| rng.random_range(0.0..100.0));
            let fast = min_cost_assignment(&cost).total_cost;
            let brute = brute_force(&cost);
            assert!(
                (fast - brute).abs() < 1e-9,
                "trial {trial}: {fast} vs {brute}"
            );
        }
    }

    #[test]
    fn assignment_is_a_matching() {
        let mut rng = StdRng::seed_from_u64(5);
        let cost = CostMatrix::from_fn(6, 9, |_, _| rng.random_range(0.0..10.0));
        let sol = min_cost_assignment(&cost);
        let mut seen = std::collections::HashSet::new();
        for c in sol.row_to_col.iter().flatten() {
            assert!(seen.insert(*c), "column {c} used twice");
        }
        assert_eq!(sol.matched(), 6, "rows ≤ cols must all match");
    }

    #[test]
    fn more_rows_than_cols_matches_cheapest() {
        let cost = CostMatrix::from_fn(3, 1, |r, _| [5.0, 1.0, 9.0][r]);
        let sol = min_cost_assignment(&cost);
        assert_eq!(sol.matched(), 1);
        assert_eq!(sol.row_to_col[1], Some(0));
        assert_eq!(sol.total_cost, 1.0);
    }

    #[test]
    fn forbidden_pairs_stay_unassigned() {
        let mut cost = CostMatrix::new(2, 2, FORBIDDEN);
        cost.set(0, 0, 1.0);
        // Row 1 can only take forbidden columns.
        let sol = min_cost_assignment(&cost);
        assert_eq!(sol.row_to_col[0], Some(0));
        assert_eq!(sol.row_to_col[1], None);
        assert_eq!(sol.total_cost, 1.0);
    }

    #[test]
    fn rectangular_matches_square_padding() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..10 {
            let data = CostMatrix::from_fn(3, 5, |_, _| rng.random_range(0.0..50.0));
            let rect = min_cost_assignment(&data).total_cost;
            // Pad to 5x5 with zero-cost dummy rows.
            let padded = CostMatrix::from_fn(5, 5, |r, c| if r < 3 { data.get(r, c) } else { 0.0 });
            let square = min_cost_assignment(&padded).total_cost;
            assert!((rect - square).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn empty_matrix_rejected() {
        let _ = CostMatrix::new(0, 3, 0.0);
    }
}
