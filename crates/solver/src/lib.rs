//! Optimization substrate for the MobiRescue baseline dispatchers.
//!
//! The comparison methods *Schedule* \[5\] and *Rescue* \[8\] both "formulate an
//! integer programming problem" to assign rescue teams to (predicted)
//! request positions. This crate provides the exact solvers they run every
//! dispatch period:
//!
//! * [`hungarian`] — O(n²m) exact min-cost assignment (the shape both
//!   baselines' programs reduce to);
//! * [`bnb`] — general 0/1 covering integer programs by branch-and-bound,
//!   used for latency benchmarks demonstrating why IP-based dispatch is
//!   slow (Figure 13's 300-second dispatch latency).

#![warn(missing_docs)]

pub mod bnb;
pub mod hungarian;

pub use bnb::{CoverProblem, CoverSolution};
pub use hungarian::{min_cost_assignment, Assignment, CostMatrix, FORBIDDEN};
