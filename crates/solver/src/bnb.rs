//! Exact 0/1 integer programming by branch-and-bound.
//!
//! The baselines' dispatch formulations are assignment problems (solved
//! exactly by [`crate::hungarian`]), but the paper emphasizes that *general*
//! integer programming is what makes them slow. This module provides the
//! general form for completeness and for latency benchmarks: minimize
//! `c · x` over binary `x` subject to covering constraints `Σⱼ aᵢⱼ xⱼ ≥ bᵢ`
//! with non-negative coefficients.

use serde::{Deserialize, Serialize};

/// A 0/1 covering program: minimize `c·x` s.t. `A x ≥ b`, `x ∈ {0,1}ⁿ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverProblem {
    /// Objective coefficients, one per variable (must be ≥ 0).
    pub costs: Vec<f64>,
    /// Constraint rows: `(coefficients, required amount)`.
    pub constraints: Vec<(Vec<f64>, f64)>,
}

/// An optimal solution to a [`CoverProblem`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverSolution {
    /// Chosen variables.
    pub selected: Vec<bool>,
    /// Objective value.
    pub cost: f64,
    /// Search nodes explored (a proxy for "integer programming is slow").
    pub nodes_explored: u64,
}

impl CoverProblem {
    /// Validates shape: every constraint row has one coefficient per
    /// variable, and all data is non-negative.
    ///
    /// # Panics
    ///
    /// Panics on malformed input.
    fn validate(&self) {
        let n = self.costs.len();
        assert!(n > 0, "need at least one variable");
        assert!(
            self.costs.iter().all(|&c| c >= 0.0),
            "costs must be non-negative"
        );
        for (row, b) in &self.constraints {
            assert_eq!(row.len(), n, "constraint row has wrong width");
            assert!(
                row.iter().all(|&a| a >= 0.0),
                "coefficients must be non-negative"
            );
            assert!(*b >= 0.0, "requirements must be non-negative");
        }
    }

    /// Solves the program exactly. Returns `None` when infeasible (even
    /// selecting every variable violates some constraint).
    ///
    /// # Panics
    ///
    /// Panics on malformed input (see [`CoverProblem`] field docs).
    pub fn solve(&self) -> Option<CoverSolution> {
        self.validate();
        let n = self.costs.len();
        // Feasibility check with everything selected.
        for (row, b) in &self.constraints {
            if row.iter().sum::<f64>() < *b - 1e-9 {
                return None;
            }
        }
        // Greedy incumbent: repeatedly take the variable with the best
        // (remaining coverage / cost) ratio.
        let mut incumbent = vec![true; n];
        let mut incumbent_cost: f64 = self.costs.iter().sum();
        if let Some((sel, cost)) = self.greedy() {
            if cost < incumbent_cost {
                incumbent = sel;
                incumbent_cost = cost;
            }
        }

        // DFS over variables in cost order with a simple admissible bound.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            self.costs[a]
                .partial_cmp(&self.costs[b])
                .expect("costs are never NaN")
        });
        let mut state = Dfs {
            problem: self,
            order,
            best: incumbent_cost,
            best_sel: incumbent,
            nodes: 0,
        };
        let deficit: Vec<f64> = self.constraints.iter().map(|(_, b)| *b).collect();
        let mut chosen = vec![false; n];
        state.recurse(0, 0.0, deficit, &mut chosen);
        Some(CoverSolution {
            selected: state.best_sel,
            cost: state.best,
            nodes_explored: state.nodes,
        })
    }

    fn greedy(&self) -> Option<(Vec<bool>, f64)> {
        let n = self.costs.len();
        let mut deficit: Vec<f64> = self.constraints.iter().map(|(_, b)| *b).collect();
        let mut selected = vec![false; n];
        let mut cost = 0.0;
        while deficit.iter().any(|&d| d > 1e-9) {
            let mut best: Option<(f64, usize)> = None;
            for j in 0..n {
                if selected[j] {
                    continue;
                }
                let gain: f64 = self
                    .constraints
                    .iter()
                    .enumerate()
                    .map(|(i, (row, _))| row[j].min(deficit[i]).max(0.0))
                    .sum();
                if gain <= 1e-12 {
                    continue;
                }
                let ratio = if self.costs[j] <= 1e-12 {
                    f64::MAX
                } else {
                    gain / self.costs[j]
                };
                if best.is_none_or(|(r, _)| ratio > r) {
                    best = Some((ratio, j));
                }
            }
            let (_, j) = best?;
            selected[j] = true;
            cost += self.costs[j];
            for (i, (row, _)) in self.constraints.iter().enumerate() {
                deficit[i] = (deficit[i] - row[j]).max(0.0);
            }
        }
        Some((selected, cost))
    }
}

struct Dfs<'a> {
    problem: &'a CoverProblem,
    order: Vec<usize>,
    best: f64,
    best_sel: Vec<bool>,
    nodes: u64,
}

impl Dfs<'_> {
    fn recurse(&mut self, depth: usize, cost: f64, deficit: Vec<f64>, chosen: &mut Vec<bool>) {
        self.nodes += 1;
        if deficit.iter().all(|&d| d <= 1e-9) {
            if cost < self.best {
                self.best = cost;
                self.best_sel = chosen.clone();
            }
            return;
        }
        if depth >= self.order.len() || cost >= self.best {
            return;
        }
        // Bound: even covering the largest remaining deficit with the best
        // remaining coverage-per-cost cannot beat the incumbent.
        let remaining: Vec<usize> = self.order[depth..].to_vec();
        let feasible = deficit.iter().enumerate().all(|(i, &d)| {
            d <= 1e-9
                || remaining
                    .iter()
                    .map(|&j| self.problem.constraints[i].0[j])
                    .sum::<f64>()
                    >= d - 1e-9
        });
        if !feasible {
            return;
        }
        let j = self.order[depth];
        // Branch 1: take j.
        let mut with: Vec<f64> = deficit.clone();
        for (i, (row, _)) in self.problem.constraints.iter().enumerate() {
            with[i] = (with[i] - row[j]).max(0.0);
        }
        chosen[j] = true;
        self.recurse(depth + 1, cost + self.problem.costs[j], with, chosen);
        chosen[j] = false;
        // Branch 2: skip j.
        self.recurse(depth + 1, cost, deficit, chosen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn solves_a_simple_set_cover() {
        // Cover both constraints; the single expensive variable covering
        // both beats two cheap partial ones... or not — B&B decides.
        let p = CoverProblem {
            costs: vec![3.0, 2.0, 2.5],
            constraints: vec![(vec![1.0, 1.0, 0.0], 1.0), (vec![1.0, 0.0, 1.0], 1.0)],
        };
        let sol = p.solve().unwrap();
        assert_eq!(sol.cost, 3.0, "variable 0 alone covers everything");
        assert_eq!(sol.selected, vec![true, false, false]);
    }

    #[test]
    fn infeasible_returns_none() {
        let p = CoverProblem {
            costs: vec![1.0],
            constraints: vec![(vec![0.5], 1.0)],
        };
        assert!(p.solve().is_none());
    }

    #[test]
    fn empty_constraints_select_nothing() {
        let p = CoverProblem {
            costs: vec![1.0, 1.0],
            constraints: vec![],
        };
        let sol = p.solve().unwrap();
        assert_eq!(sol.cost, 0.0);
        assert!(sol.selected.iter().all(|&s| !s));
    }

    #[test]
    fn matches_exhaustive_search_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(8);
        for trial in 0..20 {
            let n = 3 + trial % 6; // up to 8 variables
            let m = 1 + trial % 3;
            let p = CoverProblem {
                costs: (0..n).map(|_| rng.random_range(1.0..10.0)).collect(),
                constraints: (0..m)
                    .map(|_| {
                        (
                            (0..n).map(|_| rng.random_range(0.0..2.0)).collect(),
                            rng.random_range(0.5..2.5),
                        )
                    })
                    .collect(),
            };
            let exhaustive = {
                let mut best = f64::INFINITY;
                for mask in 0..(1u32 << n) {
                    let ok = p.constraints.iter().all(|(row, b)| {
                        (0..n)
                            .filter(|&j| mask & (1 << j) != 0)
                            .map(|j| row[j])
                            .sum::<f64>()
                            >= *b - 1e-9
                    });
                    if ok {
                        let cost: f64 = (0..n)
                            .filter(|&j| mask & (1 << j) != 0)
                            .map(|j| p.costs[j])
                            .sum();
                        best = best.min(cost);
                    }
                }
                best
            };
            match p.solve() {
                Some(sol) => {
                    assert!(
                        (sol.cost - exhaustive).abs() < 1e-9,
                        "trial {trial}: bnb {} vs exhaustive {exhaustive}",
                        sol.cost
                    );
                }
                None => assert!(
                    exhaustive.is_infinite(),
                    "trial {trial}: bnb said infeasible"
                ),
            }
        }
    }

    #[test]
    fn multi_cover_requires_multiple_sets() {
        let p = CoverProblem {
            costs: vec![1.0, 1.0, 1.0],
            constraints: vec![(vec![1.0, 1.0, 1.0], 2.0)],
        };
        let sol = p.solve().unwrap();
        assert_eq!(sol.cost, 2.0);
        assert_eq!(sol.selected.iter().filter(|&&s| s).count(), 2);
    }

    #[test]
    #[should_panic(expected = "wrong width")]
    fn malformed_constraint_rejected() {
        let p = CoverProblem {
            costs: vec![1.0, 2.0],
            constraints: vec![(vec![1.0], 1.0)],
        };
        let _ = p.solve();
    }
}
