//! Property-based tests for the optimization substrate.

use mobirescue_solver::bnb::CoverProblem;
use mobirescue_solver::hungarian::{min_cost_assignment, CostMatrix};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize, values: &[f64]) -> CostMatrix {
    CostMatrix::from_fn(rows, cols, |r, c| values[r * cols + c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Hungarian result is a matching, never worse than any random
    /// permutation, and invariant under adding a constant to a row.
    #[test]
    fn hungarian_optimality_properties(
        n in 2usize..6,
        values in prop::collection::vec(0.0f64..100.0, 36),
        shift in 0.0f64..50.0,
    ) {
        let cost = matrix(n, n, &values);
        let sol = min_cost_assignment(&cost);
        // Matching: all rows assigned, no column reuse.
        let cols: Vec<usize> = sol.row_to_col.iter().flatten().copied().collect();
        prop_assert_eq!(cols.len(), n);
        let distinct: std::collections::HashSet<_> = cols.iter().collect();
        prop_assert_eq!(distinct.len(), n);
        // Not worse than the identity permutation.
        let identity: f64 = (0..n).map(|i| cost.get(i, i)).sum();
        prop_assert!(sol.total_cost <= identity + 1e-9);
        // Row-shift invariance of the argmin (total shifts by `shift`).
        let shifted = CostMatrix::from_fn(n, n, |r, c| {
            cost.get(r, c) + if r == 0 { shift } else { 0.0 }
        });
        let sol2 = min_cost_assignment(&shifted);
        prop_assert!((sol2.total_cost - sol.total_cost - shift).abs() < 1e-6);
    }

    /// Rectangular problems match their square zero-padded equivalents.
    #[test]
    fn hungarian_rectangular_equals_padded(
        rows in 2usize..5,
        extra in 1usize..4,
        values in prop::collection::vec(0.0f64..100.0, 64),
    ) {
        let cols = rows + extra;
        let cost = matrix(rows, cols, &values);
        let rect = min_cost_assignment(&cost).total_cost;
        let padded = CostMatrix::from_fn(cols, cols, |r, c| {
            if r < rows { cost.get(r, c) } else { 0.0 }
        });
        let square = min_cost_assignment(&padded).total_cost;
        prop_assert!((rect - square).abs() < 1e-9);
    }

    /// Branch-and-bound solutions are feasible and never beaten by greedy.
    #[test]
    fn bnb_feasible_and_at_most_greedy(
        n in 2usize..8,
        costs in prop::collection::vec(0.5f64..10.0, 8),
        coeffs in prop::collection::vec(0.0f64..2.0, 16),
        demand in 0.5f64..3.0,
    ) {
        let costs = costs[..n].to_vec();
        let row: Vec<f64> = coeffs[..n].to_vec();
        let feasible_total: f64 = row.iter().sum();
        let problem = CoverProblem {
            costs: costs.clone(),
            constraints: vec![(row.clone(), demand.min(feasible_total * 0.9))],
        };
        if let Some(sol) = problem.solve() {
            // Feasible.
            let covered: f64 = (0..n).filter(|&j| sol.selected[j]).map(|j| row[j]).sum();
            prop_assert!(covered + 1e-9 >= problem.constraints[0].1);
            // Optimal ≤ all-selected.
            prop_assert!(sol.cost <= costs.iter().sum::<f64>() + 1e-9);
            // Removing any selected variable breaks feasibility or was
            // free: optimality implies no strictly-cheaper subset, checked
            // against the exhaustive optimum for these tiny sizes.
            let mut best = f64::INFINITY;
            for mask in 0..(1u32 << n) {
                let cov: f64 = (0..n).filter(|&j| mask & (1 << j) != 0).map(|j| row[j]).sum();
                if cov + 1e-9 >= problem.constraints[0].1 {
                    let cost: f64 =
                        (0..n).filter(|&j| mask & (1 << j) != 0).map(|j| costs[j]).sum();
                    best = best.min(cost);
                }
            }
            prop_assert!((sol.cost - best).abs() < 1e-6, "bnb {} vs exhaustive {}", sol.cost, best);
        }
    }
}

#[test]
fn hungarian_handles_negative_costs() {
    // Potentials-based Hungarian is correct for arbitrary signs.
    let cost = CostMatrix::from_fn(3, 3, |r, c| {
        [[-5.0, 2.0, 8.0], [3.0, -7.0, 1.0], [9.0, 4.0, -2.0]][r][c]
    });
    let sol = min_cost_assignment(&cost);
    assert_eq!(sol.total_cost, -14.0, "diagonal is optimal");
    assert_eq!(sol.row_to_col, vec![Some(0), Some(1), Some(2)]);
}

#[test]
fn hungarian_single_cell() {
    let cost = CostMatrix::new(1, 1, 42.0);
    let sol = min_cost_assignment(&cost);
    assert_eq!(sol.total_cost, 42.0);
    assert_eq!(sol.row_to_col, vec![Some(0)]);
}
