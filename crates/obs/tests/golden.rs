//! Golden-file tests pinning the `mrobs 1` snapshot text and the
//! Prometheus exposition rendering.
//!
//! The fixtures are the byte-exact renderings of a small deterministic
//! registry. Any change to either format — a new line kind, reordered
//! fields, different bucket encoding — shows up as an explicit diff
//! instead of silently breaking operators parsing dumps from
//! `serve --metrics-out` / `--metrics-prom`.
//!
//! To bless an *intentional* format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p mobirescue-obs --test golden
//! ```
//!
//! and commit the updated fixtures together with the format change and a
//! version-number bump rationale.

use mobirescue_obs::{ObsSnapshot, Registry};

const TEXT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/mrobs_v1.txt");
const PROM_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/mrobs_v1.prom");

/// The fixed registry the fixtures pin: counters, gauges and histograms
/// covering the edge buckets (zero, one, a power of two, its neighbours,
/// and `u64::MAX`).
fn golden_registry() -> ObsSnapshot {
    let reg = Registry::new();
    reg.counter("serve.ingest_retries").add(7);
    reg.counter("serve.shard_restarts");
    reg.gauge("serve.shard0.queue_depth").set(3);
    reg.gauge("serve.shard1.queue_depth").set(-1);
    let h = reg.histogram("epoch.dispatch_ms");
    for v in [0, 1, 2, 1023, 1024, 1025, u64::MAX] {
        h.record(v);
    }
    reg.histogram("epoch.routing_ms").record(12);
    reg.snapshot()
}

fn check(path: &str, generated: &str, what: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, generated).expect("fixture written");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden fixture exists; run with UPDATE_GOLDEN=1 to create it");
    if generated != golden {
        let mismatch = generated
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (g, f))| g != f);
        let context = match mismatch {
            Some((i, (g, f))) => format!(
                "first difference at line {}:\n  generated: {g}\n  fixture:   {f}",
                i + 1
            ),
            None => format!(
                "one rendering is a prefix of the other ({} vs {} bytes)",
                generated.len(),
                golden.len()
            ),
        };
        panic!(
            "{what} drifted from the golden fixture.\n{context}\n\
             If the change is intentional, bless it with:\n  \
             UPDATE_GOLDEN=1 cargo test -p mobirescue-obs --test golden\n\
             and explain the format change in the commit."
        );
    }
}

#[test]
fn mrobs_v1_text_matches_golden_fixture() {
    check(
        TEXT_PATH,
        &golden_registry().to_text(),
        "`mrobs 1` snapshot text",
    );
}

#[test]
fn prometheus_exposition_matches_golden_fixture() {
    check(
        PROM_PATH,
        &golden_registry().to_prometheus(),
        "Prometheus exposition text",
    );
}

#[test]
fn golden_fixture_still_parses() {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return;
    }
    let golden = std::fs::read_to_string(TEXT_PATH)
        .expect("golden fixture exists; run with UPDATE_GOLDEN=1 to create it");
    let parsed = ObsSnapshot::parse(&golden).expect("the pinned format parses");
    assert_eq!(parsed, golden_registry());
    assert_eq!(parsed.to_text(), golden, "parse → render round-trips");
}
