//! Concurrency smoke test: handles fetched from one registry are updated
//! from many threads at once and every update lands exactly once.

use mobirescue_obs::{Level, Registry};
use std::sync::Arc;

const THREADS: usize = 8;
const OPS: u64 = 10_000;

#[test]
fn concurrent_updates_are_all_accounted() {
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                // Handles are fetched per-thread by name, exercising the
                // get-or-create path under contention too.
                let c = reg.counter("smoke.counter");
                let g = reg.gauge("smoke.gauge");
                let h = reg.histogram("smoke.hist");
                for i in 0..OPS {
                    c.inc();
                    g.add(1);
                    h.record(i % 1024);
                }
                reg.events()
                    .log(Level::Info, 0, Some(t), format!("thread {t} done"));
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("worker thread");
    }

    let total = THREADS as u64 * OPS;
    let snap = reg.snapshot();
    assert_eq!(snap.counters["smoke.counter"], total);
    assert_eq!(snap.gauges["smoke.gauge"], total as i64);
    let hist = &snap.histograms["smoke.hist"];
    assert_eq!(hist.count(), total);
    assert_eq!(hist.max, 1023);
    assert_eq!(reg.events().total_logged(), THREADS as u64);
}
