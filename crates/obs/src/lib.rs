//! `mobirescue-obs`: the observability spine of the MobiRescue runtime.
//!
//! After the serve runtime grew shards, degraded epochs, routing caches
//! and retry storms, its telemetry was scattered across ad-hoc struct
//! fields. This crate unifies it:
//!
//! * **[`Registry`]** — named [`Counter`]s, [`Gauge`]s and log2-bucketed
//!   latency [`Histogram`]s (p50/p95/p99/max) with cheap atomic updates
//!   from any thread. Handles are `Arc`-backed: fetch once, update
//!   lock-free forever.
//! * **Snapshots** — [`Registry::snapshot`] captures every metric into an
//!   [`ObsSnapshot`] that renders both a stable, versioned
//!   machine-readable text format (`mrobs 1`, round-trippable via
//!   [`ObsSnapshot::parse`]) and Prometheus-style exposition text
//!   ([`ObsSnapshot::to_prometheus`]).
//! * **Spans** — [`Histogram::time`] returns a guard that records its
//!   elapsed milliseconds on drop, measured on a pluggable
//!   [`TimeSource`] ([`WallTime`] in deployment, [`ManualTime`] or a
//!   simulated service clock in tests, so instrumented runs stay
//!   bit-for-bit deterministic). [`PhaseTimer`] is the optional,
//!   zero-overhead-when-disabled embedding of a time source used by the
//!   simulation engine and dispatcher.
//! * **Events** — every registry carries an [`EventRing`], a bounded ring
//!   buffer of recent structured events (sequence, epoch, shard, level,
//!   message) dumpable on error or on demand.
//!
//! Built entirely on `std`, no external dependencies — consistent with
//! the workspace's vendored-shim policy.

#![warn(missing_docs)]

pub mod events;
pub mod histogram;
pub mod registry;
pub mod snapshot;
pub mod time;

pub use events::{EventRing, Level, ObsEvent};
pub use histogram::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use registry::{Counter, Gauge, Registry};
pub use snapshot::ObsSnapshot;
pub use time::{ManualTime, PhaseTimer, SpanTimer, TimeSource, WallTime};
