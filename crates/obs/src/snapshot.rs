//! Frozen registry contents and the two wire formats.
//!
//! # `mrobs 1` — the stable machine-readable text format
//!
//! Versioned like the `mrworld 1`/`mrserve 1` snapshot formats:
//!
//! ```text
//! mrobs 1
//! c <name> <value>
//! g <name> <value>
//! h <name> <count> <sum> <max> [<bucket>:<count> ...]
//! end
//! ```
//!
//! Records are sorted by kind then name, one per line, whitespace
//! separated; histogram buckets are sparse (`index:count`, log2 buckets —
//! see [`crate::histogram`]). The format round-trips through
//! [`ObsSnapshot::parse`], and the golden test in `tests/golden.rs` pins
//! every byte — bump the version number for any incompatible change.
//!
//! # Prometheus exposition
//!
//! [`ObsSnapshot::to_prometheus`] renders the conventional
//! `# TYPE`-annotated exposition text: counters and gauges as single
//! samples, histograms as cumulative `_bucket{le="..."}` series plus
//! `_sum` and `_count`. Metric names are sanitized (`.` → `_`) and
//! prefixed `mobirescue_`.

use crate::histogram::{bucket_upper_bound, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A frozen, renderable copy of a [`crate::Registry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram contents by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl ObsSnapshot {
    /// Renders the versioned `mrobs 1` text form (see the module docs).
    pub fn to_text(&self) -> String {
        let mut out = String::from("mrobs 1\n");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "c {name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "g {name} {value}");
        }
        for (name, hist) in &self.histograms {
            let _ = writeln!(out, "h {name} {}", hist.to_line());
        }
        out.push_str("end\n");
        out
    }

    /// Parses [`ObsSnapshot::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed record (missing
    /// header or `end`, bad value, duplicate name, unknown tag).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some("mrobs 1") {
            return Err("missing `mrobs 1` header".to_owned());
        }
        let mut snap = Self::default();
        let mut saw_end = false;
        for line in lines {
            let mut p = line.split_whitespace();
            let Some(tag) = p.next() else { continue };
            match tag {
                "c" | "g" => {
                    let name = p.next().ok_or_else(|| format!("`{line}`: missing name"))?;
                    let value = p.next().ok_or_else(|| format!("`{line}`: missing value"))?;
                    if p.next().is_some() {
                        return Err(format!("`{line}`: trailing tokens"));
                    }
                    let fresh = if tag == "c" {
                        let value = value
                            .parse()
                            .map_err(|_| format!("`{line}`: bad counter value"))?;
                        snap.counters.insert(name.to_owned(), value).is_none()
                    } else {
                        let value = value
                            .parse()
                            .map_err(|_| format!("`{line}`: bad gauge value"))?;
                        snap.gauges.insert(name.to_owned(), value).is_none()
                    };
                    if !fresh {
                        return Err(format!("duplicate metric `{name}`"));
                    }
                }
                "h" => {
                    let name = p.next().ok_or_else(|| format!("`{line}`: missing name"))?;
                    let rest = line
                        .split_whitespace()
                        .skip(2)
                        .collect::<Vec<_>>()
                        .join(" ");
                    let hist = HistogramSnapshot::from_line(&rest)
                        .ok_or_else(|| format!("`{line}`: bad histogram"))?;
                    if snap.histograms.insert(name.to_owned(), hist).is_some() {
                        return Err(format!("duplicate metric `{name}`"));
                    }
                }
                "end" => {
                    saw_end = true;
                    break;
                }
                other => return Err(format!("unknown record `{other}`")),
            }
        }
        if !saw_end {
            return Err("truncated dump (missing `end`)".to_owned());
        }
        Ok(snap)
    }

    /// Renders Prometheus-style exposition text (see the module docs).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, value) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, hist) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            let last = hist.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
            for (i, &c) in hist.counts.iter().enumerate().take(last + 1) {
                cumulative += c;
                let _ = writeln!(
                    out,
                    "{n}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_upper_bound(i)
                );
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", hist.count());
            let _ = writeln!(out, "{n}_sum {}", hist.sum);
            let _ = writeln!(out, "{n}_count {}", hist.count());
        }
        out
    }

    /// A human-oriented table: one line per metric, histograms with
    /// count/mean/p50/p95/p99/p999/max. For operators, not machines.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name:<40} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "{name:<40} {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name:<40} n={} mean={:.1} p50={} p95={} p99={} p999={} max={}",
                h.count(),
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.p999(),
                h.max
            );
        }
        out
    }
}

/// `mobirescue_` + the name with every non-alphanumeric byte replaced by
/// `_` — a valid Prometheus metric name.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 11);
    out.push_str("mobirescue_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> ObsSnapshot {
        let reg = Registry::new();
        reg.counter("serve.requests_accepted").add(12);
        reg.counter("serve.requests_shed").add(2);
        reg.gauge("serve.queue_depth").set(3);
        reg.gauge("serve.drain").set(-1);
        let h = reg.histogram("epoch.routing_ms");
        for v in [0, 1, 3, 9, 1_000] {
            h.record(v);
        }
        reg.snapshot()
    }

    #[test]
    fn text_round_trips() {
        let snap = sample();
        let text = snap.to_text();
        assert!(text.starts_with("mrobs 1\n"));
        assert!(text.ends_with("end\n"));
        let back = ObsSnapshot::parse(&text).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(ObsSnapshot::parse("").is_err());
        assert!(ObsSnapshot::parse("mrobs 2\nend\n").is_err());
        assert!(ObsSnapshot::parse("mrobs 1\n").is_err(), "missing end");
        assert!(ObsSnapshot::parse("mrobs 1\nc lonely\nend\n").is_err());
        assert!(ObsSnapshot::parse("mrobs 1\nc x 1\nc x 2\nend\n").is_err());
        assert!(ObsSnapshot::parse("mrobs 1\nz what 1\nend\n").is_err());
        assert!(ObsSnapshot::parse("mrobs 1\ng x 1 2\nend\n").is_err());
        assert!(ObsSnapshot::parse("mrobs 1\nh x 1 2\nend\n").is_err());
    }

    #[test]
    fn prometheus_shape() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE mobirescue_serve_requests_accepted counter"));
        assert!(text.contains("mobirescue_serve_requests_accepted 12"));
        assert!(text.contains("# TYPE mobirescue_serve_queue_depth gauge"));
        assert!(text.contains("mobirescue_serve_drain -1"));
        assert!(text.contains("# TYPE mobirescue_epoch_routing_ms histogram"));
        // Cumulative buckets: 0 → 1 observation, le=1 → 2, le=3 → 3 ...
        assert!(text.contains("mobirescue_epoch_routing_ms_bucket{le=\"0\"} 1"));
        assert!(text.contains("mobirescue_epoch_routing_ms_bucket{le=\"1\"} 2"));
        assert!(text.contains("mobirescue_epoch_routing_ms_bucket{le=\"3\"} 3"));
        assert!(text.contains("mobirescue_epoch_routing_ms_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("mobirescue_epoch_routing_ms_sum 1013"));
        assert!(text.contains("mobirescue_epoch_routing_ms_count 5"));
    }

    #[test]
    fn summary_mentions_quantiles() {
        let s = sample().render_summary();
        assert!(s.contains("p95="), "{s}");
        assert!(s.contains("p999="), "{s}");
        assert!(s.contains("serve.requests_accepted"), "{s}");
    }
}
