//! Log2-bucketed latency histograms with atomic updates.
//!
//! Values (milliseconds, but any `u64` works) land in buckets by bit
//! length: bucket 0 holds exactly 0, bucket `k` (1 ≤ k ≤ 64) holds
//! `2^(k-1) ..= 2^k - 1`. 65 buckets cover the whole `u64` range, so
//! recording never saturates and quantiles stay within a factor of two
//! of the truth — plenty for p50/p95/p99 dashboards, at the cost of one
//! `fetch_add` per observation.

use crate::time::{SpanTimer, TimeSource};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: one for zero plus one per `u64` bit length.
pub const NUM_BUCKETS: usize = 65;

/// The bucket a value lands in: its bit length (0 for 0).
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Largest value bucket `index` holds (`2^index - 1`, saturating).
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        1..=63 => (1u64 << index) - 1,
        _ => u64::MAX,
    }
}

struct Inner {
    counts: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

/// A shareable handle to one histogram. Cloning shares the underlying
/// buckets; updates are lock-free atomics.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
}

impl Histogram {
    /// An empty histogram.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                counts: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.inner.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
        self.inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Starts a span guard that records its elapsed milliseconds on drop.
    pub fn time<'a>(&'a self, source: &'a dyn TimeSource) -> SpanTimer<'a> {
        SpanTimer::start(self, source)
    }

    /// A point-in-time copy of the buckets. Concurrent recorders may be
    /// mid-update, so `sum`/`max` can lead or trail the bucket counts by
    /// the in-flight observations; each individual counter is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .inner
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.inner.sum.load(Ordering::Relaxed),
            max: self.inner.max.load(Ordering::Relaxed),
        }
    }
}

/// Frozen histogram contents, with quantile accessors and the text forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, [`NUM_BUCKETS`] entries.
    pub counts: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The value at quantile `q` (0 < q ≤ 1): the upper bound of the
    /// bucket the rank lands in, clamped to the recorded max. 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (upper bucket bound, clamped to max).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile — the tail the serving SLOs gate on.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// The sparse one-line text form used by `mrobs 1`:
    /// `<count> <sum> <max> [<bucket>:<count> ...]` — only non-empty
    /// buckets are listed.
    pub fn to_line(&self) -> String {
        let mut out = format!("{} {} {}", self.count(), self.sum, self.max);
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                let _ = write!(out, " {i}:{c}");
            }
        }
        out
    }

    /// Parses [`HistogramSnapshot::to_line`] output. Returns `None` on
    /// malformed input (including a count that disagrees with the
    /// buckets).
    pub fn from_line(line: &str) -> Option<Self> {
        let mut it = line.split_whitespace();
        let count: u64 = it.next()?.parse().ok()?;
        let sum = it.next()?.parse().ok()?;
        let max = it.next()?.parse().ok()?;
        let mut counts = vec![0u64; NUM_BUCKETS];
        for pair in it {
            let (idx, c) = pair.split_once(':')?;
            let idx: usize = idx.parse().ok()?;
            if idx >= NUM_BUCKETS {
                return None;
            }
            counts[idx] = c.parse().ok()?;
        }
        let snap = Self { counts, sum, max };
        (snap.count() == count).then_some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // 0 is its own bucket; 1 starts bucket 1; every 2^k starts a new
        // bucket and 2^k - 1 / 2^k + 1 sit on either side.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        for k in 1..63 {
            let p = 1u64 << k;
            assert_eq!(bucket_index(p), k + 1, "2^{k}");
            assert_eq!(bucket_index(p - 1), k, "2^{k} - 1");
            assert_eq!(bucket_index(p + 1), k + 1, "2^{k} + 1");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1_023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Bucket invariant: every value fits under its bucket's bound.
        for v in [0u64, 1, 2, 3, 1_024, 1_025, u64::MAX] {
            assert!(v <= bucket_upper_bound(bucket_index(v)));
        }
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 5, 9, 100, 100, 100, 2_000, 60_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10);
        assert_eq!(s.sum, 62_317);
        assert_eq!(s.max, 60_000);
        // Rank 5 lands in bucket 4 (values 8..=15): p50 == 15.
        assert_eq!(s.p50(), 15);
        // p95 → rank 10 → the max's bucket, clamped to max.
        assert_eq!(s.p95(), 60_000);
        assert_eq!(s.p99(), 60_000);
        assert_eq!(s.p999(), 60_000);
        assert_eq!(s.quantile(0.01), 0);
    }

    #[test]
    fn p999_separates_from_p99_at_bucket_boundaries() {
        // 998 fast observations and 2 slow ones: the slow tail is 0.2% of
        // the population, so p99 must stay in the fast bucket while p999
        // (rank 999 of 1000) lands in the slow one.
        let h = Histogram::new();
        for _ in 0..998 {
            h.record(1);
        }
        h.record(5_000);
        h.record(6_000);
        let s = h.snapshot();
        assert_eq!(s.count(), 1_000);
        assert_eq!(s.p99(), 1);
        // Rank 999 falls in bucket 13 (4096..=8191), clamped to max.
        assert_eq!(s.p999(), 6_000);
        // Exactly at a bucket edge: a lone max at 2^k lives in bucket k+1
        // whose upper bound exceeds it, so the clamp to max applies.
        let h = Histogram::new();
        for _ in 0..999 {
            h.record(0);
        }
        h.record(1 << 12);
        let s = h.snapshot();
        assert_eq!(s.p99(), 0);
        assert_eq!(s.p999(), 0, "rank 999 of 1000 is still the zero bucket");
        assert_eq!(s.quantile(1.0), 1 << 12);
    }

    #[test]
    fn extreme_values_round_trip() {
        let h = Histogram::new();
        for v in [0, 1, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.max, u64::MAX);
        let back = HistogramSnapshot::from_line(&s.to_line()).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn from_line_rejects_garbage() {
        assert!(HistogramSnapshot::from_line("").is_none());
        assert!(HistogramSnapshot::from_line("1 2").is_none());
        assert!(HistogramSnapshot::from_line("1 2 3 notapair").is_none());
        assert!(HistogramSnapshot::from_line("1 2 3 99:1").is_none());
        // Count/bucket disagreement is rejected.
        assert!(HistogramSnapshot::from_line("5 2 3 1:1").is_none());
        assert!(HistogramSnapshot::from_line("1 0 1 1:1").is_some());
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = HistogramSnapshot::empty();
        assert_eq!(
            (s.count(), s.p50(), s.p99(), s.p999(), s.max),
            (0, 0, 0, 0, 0)
        );
        assert_eq!(s.mean(), 0.0);
    }
}
