//! Pluggable time for span measurement.
//!
//! Nothing in this crate reads the OS clock directly: spans measure on a
//! [`TimeSource`]. Deployments pass [`WallTime`]; deterministic tests pass
//! [`ManualTime`] (or adapt a simulated service clock), so instrumented
//! runs produce bit-identical results — observability must never perturb
//! determinism.

use crate::histogram::Histogram;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic millisecond clock spans measure on.
pub trait TimeSource: Send + Sync {
    /// Milliseconds since an arbitrary (per-source) origin.
    fn now_ms(&self) -> u64;
}

/// Real time, anchored at construction.
pub struct WallTime {
    start: Instant,
}

impl WallTime {
    /// A wall time source starting at zero now.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
        }
    }
}

impl Default for WallTime {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeSource for WallTime {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// Test time: only moves when advanced. Deterministic.
#[derive(Debug, Default)]
pub struct ManualTime {
    now: AtomicU64,
}

impl ManualTime {
    /// A manual time source at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the source by `ms`.
    pub fn advance_ms(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::Relaxed);
    }
}

impl TimeSource for ManualTime {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// A guard that records the milliseconds between its creation and its
/// drop into a [`Histogram`] — the `span!`-like primitive. Obtain one
/// via [`Histogram::time`]; call [`SpanTimer::discard`] to abandon the
/// measurement instead.
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    source: &'a dyn TimeSource,
    start_ms: u64,
    armed: bool,
}

impl<'a> SpanTimer<'a> {
    pub(crate) fn start(hist: &'a Histogram, source: &'a dyn TimeSource) -> Self {
        Self {
            hist,
            source,
            start_ms: source.now_ms(),
            armed: true,
        }
    }

    /// Milliseconds elapsed so far.
    pub fn elapsed_ms(&self) -> u64 {
        self.source.now_ms().saturating_sub(self.start_ms)
    }

    /// Drops the guard without recording anything.
    pub fn discard(mut self) {
        self.armed = false;
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(self.elapsed_ms());
        }
    }
}

/// An optional, shareable time source for embedding in hot structures
/// (the simulation engine, the dispatcher): disabled by default, in which
/// case every read is a branch on `None` and no clock is touched.
#[derive(Clone, Default)]
pub struct PhaseTimer {
    source: Option<Arc<dyn TimeSource>>,
}

impl PhaseTimer {
    /// A timer that never measures (the default for batch runs).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A timer measuring on `source`.
    pub fn new(source: Arc<dyn TimeSource>) -> Self {
        Self {
            source: Some(source),
        }
    }

    /// Whether a time source is attached.
    pub fn enabled(&self) -> bool {
        self.source.is_some()
    }

    /// The current time, or `None` when disabled.
    pub fn now_ms(&self) -> Option<u64> {
        self.source.as_ref().map(|s| s.now_ms())
    }

    /// Milliseconds since `start` (a value previously returned by
    /// [`PhaseTimer::now_ms`]); 0 when disabled.
    pub fn elapsed_since(&self, start: Option<u64>) -> u64 {
        match (start, self.now_ms()) {
            (Some(t0), Some(t1)) => t1.saturating_sub(t0),
            _ => 0,
        }
    }
}

impl fmt::Debug for PhaseTimer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhaseTimer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_time_is_deterministic() {
        let t = ManualTime::new();
        assert_eq!(t.now_ms(), 0);
        t.advance_ms(40);
        assert_eq!(t.now_ms(), 40);
    }

    #[test]
    fn wall_time_moves() {
        let t = WallTime::new();
        let a = t.now_ms();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(t.now_ms() > a);
    }

    #[test]
    fn span_records_on_drop_and_discard_does_not() {
        let h = Histogram::new();
        let t = ManualTime::new();
        {
            let span = h.time(&t);
            t.advance_ms(7);
            assert_eq!(span.elapsed_ms(), 7);
        }
        let snap = h.snapshot();
        assert_eq!((snap.count(), snap.max), (1, 7));
        let span = h.time(&t);
        t.advance_ms(100);
        span.discard();
        assert_eq!(h.snapshot().count(), 1);
    }

    #[test]
    fn disabled_phase_timer_reads_nothing() {
        let p = PhaseTimer::disabled();
        assert!(!p.enabled());
        assert_eq!(p.now_ms(), None);
        assert_eq!(p.elapsed_since(None), 0);
        let m = Arc::new(ManualTime::new());
        let p = PhaseTimer::new(Arc::clone(&m) as Arc<dyn TimeSource>);
        let t0 = p.now_ms();
        m.advance_ms(5);
        assert_eq!(p.elapsed_since(t0), 5);
    }
}
