//! A bounded ring buffer of recent structured events.
//!
//! Metrics say *how much*; the event ring says *what happened last*. The
//! serve runtime logs epoch completions, degraded epochs, failed
//! hot-swaps and shard restarts here, and dumps the ring on error or on
//! demand — a flight recorder, not a log pipeline.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Routine progress (epoch completed, snapshot taken).
    Info,
    /// Degraded but serving (fallback dispatcher, failed swap).
    Warn,
    /// Something was lost or restarted (shard crash, rejected snapshot).
    Error,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        })
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Monotonic sequence number (survives ring eviction, so gaps are
    /// visible).
    pub seq: u64,
    /// Dispatch epoch the event belongs to.
    pub epoch: u32,
    /// Shard the event concerns, if any.
    pub shard: Option<usize>,
    /// Severity.
    pub level: Level,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ObsEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>5}] epoch {:>4} ", self.seq, self.epoch)?;
        match self.shard {
            Some(s) => write!(f, "shard {s} ")?,
            None => f.write_str("        ")?,
        }
        write!(f, "{:>5} {}", self.level, self.message)
    }
}

struct Ring {
    events: VecDeque<ObsEvent>,
    next_seq: u64,
}

/// A fixed-capacity ring of recent [`ObsEvent`]s. Oldest events are
/// evicted first; the sequence numbers keep eviction visible.
pub struct EventRing {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl EventRing {
    /// A ring holding at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            ring: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity),
                next_seq: 0,
            }),
        }
    }

    /// Records one event, evicting the oldest when full. Returns the
    /// event's sequence number.
    pub fn log(
        &self,
        level: Level,
        epoch: u32,
        shard: Option<usize>,
        message: impl Into<String>,
    ) -> u64 {
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() >= self.capacity {
            ring.events.pop_front();
        }
        ring.events.push_back(ObsEvent {
            seq,
            epoch,
            shard,
            level,
            message: message.into(),
        });
        seq
    }

    /// Events recorded over the ring's lifetime (including evicted ones).
    pub fn total_logged(&self) -> u64 {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .next_seq
    }

    /// A copy of the retained events, oldest first.
    pub fn dump(&self) -> Vec<ObsEvent> {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// The retained events rendered one per line, oldest first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.dump() {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_sequence() {
        let ring = EventRing::with_capacity(3);
        for i in 0..5u32 {
            ring.log(Level::Info, i, Some(i as usize % 2), format!("event {i}"));
        }
        let events = ring.dump();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(ring.total_logged(), 5);
        let text = ring.render();
        assert!(text.contains("event 4"));
        assert!(!text.contains("event 1"));
    }

    #[test]
    fn levels_order_and_render() {
        assert!(Level::Info < Level::Warn && Level::Warn < Level::Error);
        let ring = EventRing::with_capacity(8);
        ring.log(Level::Error, 2, None, "shard 1 restarted");
        let line = ring.render();
        assert!(line.contains("ERROR"), "{line}");
        assert!(line.contains("epoch    2"), "{line}");
    }
}
