//! The metric registry: named counters, gauges and histograms.
//!
//! Handles are fetched once by name (a short lock) and updated lock-free
//! forever after. Names are free-form dotted paths (`serve.ingest_retries`,
//! `epoch.routing_ms`); the snapshot renders them sorted, so output is
//! deterministic regardless of registration order.

use crate::events::EventRing;
use crate::histogram::Histogram;
use crate::snapshot::ObsSnapshot;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter handle. Cloning shares the value.
#[derive(Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    fn new() -> Self {
        Self {
            value: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Overwrites the value. Counters are monotonic in steady state;
    /// `set` exists for snapshot *restore* (rebuilding a service from a
    /// persisted state) and for mirroring an external source of truth —
    /// never for decrementing live accounting.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }
}

/// A gauge handle: a value that can go up and down. Cloning shares it.
#[derive(Clone)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    fn new() -> Self {
        Self {
            value: Arc::new(AtomicI64::new(0)),
        }
    }

    /// Overwrites the value.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The registry: a name → metric map plus the event ring.
///
/// One registry per service (not a process global): tests and multi-tenant
/// hosts keep their telemetry separate, and snapshot/restore can rebuild a
/// service's registry without cross-talk.
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    events: EventRing,
}

impl Registry {
    /// An empty registry with the default 256-event ring.
    pub fn new() -> Self {
        Self::with_event_capacity(256)
    }

    /// An empty registry whose event ring holds `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Self {
            metrics: Mutex::new(BTreeMap::new()),
            events: EventRing::with_capacity(capacity),
        }
    }

    fn metrics(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind —
    /// a programming error, caught loudly.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics();
        let metric = metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Counter::new()));
        match metric {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics();
        let metric = metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Gauge::new()));
        match metric {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics();
        let metric = metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Histogram::new()));
        match metric {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// The registry's event ring.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Captures every metric into a frozen, renderable snapshot.
    pub fn snapshot(&self) -> ObsSnapshot {
        let metrics = self.metrics();
        let mut snap = ObsSnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.value());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.value());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let metrics = self.metrics();
        f.debug_struct("Registry")
            .field("metrics", &metrics.len())
            .field("events_logged", &self.events.total_logged())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(a.value(), 4);
        let g = reg.gauge("depth");
        g.set(7);
        g.add(-2);
        assert_eq!(reg.gauge("depth").value(), 5);
        reg.histogram("lat").record(9);
        assert_eq!(reg.histogram("lat").snapshot().count(), 1);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn counter_set_overwrites() {
        let reg = Registry::new();
        let c = reg.counter("restored");
        c.add(10);
        c.set(4);
        assert_eq!(c.value(), 4);
    }
}
