//! Reproduction of the paper's Section-III observations from the synthetic
//! dataset, through the public facade. These checks operate on the analysis
//! *pipeline output* (pings → trips → flow → deliveries), not on generator
//! internals.

use mobirescue::core::analysis::DatasetAnalysis;
use mobirescue::core::scenario::ScenarioConfig;

fn analyzed() -> (mobirescue::core::scenario::Scenario, DatasetAnalysis) {
    let scenario = ScenarioConfig::small().florence().build(123);
    let analysis = DatasetAnalysis::run(&scenario);
    (scenario, analysis)
}

#[test]
fn observation1_factors_track_impact_severity() {
    // Table I signs: precipitation and wind anticorrelate with (relative)
    // flow; altitude correlates positively.
    let (scenario, analysis) = analyzed();
    let t = analysis.table1(&scenario).expect("correlations defined");
    assert!(
        t.precipitation < 0.0,
        "precipitation {:+.3}",
        t.precipitation
    );
    assert!(t.wind < 0.0, "wind {:+.3}", t.wind);
    assert!(t.altitude > 0.0, "altitude {:+.3}", t.altitude);
}

#[test]
fn observation1_regions_differ_in_impact() {
    // Figure 3's premise: per-segment before/after flow differences spread
    // over a wide range rather than being uniform.
    let (scenario, analysis) = analyzed();
    let tl = scenario.hurricane().timeline;
    let cdf = analysis.flow_difference_cdf(
        &scenario,
        tl.disaster_start_day.saturating_sub(5)..tl.disaster_start_day,
        (tl.disaster_end_day + 1)..(tl.disaster_end_day + 6),
    );
    assert!(cdf.len() > 100);
    let spread = cdf.max().unwrap() - cdf.min().unwrap();
    assert!(spread > 0.0, "no variation in segment impact");
}

#[test]
fn observation2_flow_collapses_then_partially_recovers() {
    let (scenario, analysis) = analyzed();
    let tl = scenario.hurricane().timeline;
    let regions = &scenario.city.regions;
    let city_avg = |day: u32| -> f64 {
        regions
            .region_ids()
            .map(|r| analysis.flow.region_daily_avg(regions, r, day))
            .sum::<f64>()
            / regions.num_regions() as f64
    };
    let before = (city_avg(tl.disaster_start_day - 4) + city_avg(tl.disaster_start_day - 3)) / 2.0;
    let during = city_avg(tl.peak_hour() / 24);
    let after = (city_avg(tl.disaster_end_day + 2) + city_avg(tl.disaster_end_day + 3)) / 2.0;
    assert!(
        during < before * 0.4,
        "no collapse: before {before:.2}, during {during:.2}"
    );
    assert!(
        after > during,
        "no recovery: during {during:.2}, after {after:.2}"
    );
    assert!(
        after < before,
        "recovery should stay below baseline (Figure 5)"
    );
}

#[test]
fn observation2_hospital_deliveries_spike_with_the_disaster() {
    let (scenario, analysis) = analyzed();
    let tl = scenario.hurricane().timeline;
    let before_avg: f64 = (2..tl.disaster_start_day)
        .map(|d| analysis.deliveries_per_day[d as usize] as f64)
        .sum::<f64>()
        / (tl.disaster_start_day - 2) as f64;
    let peak = (tl.disaster_start_day..tl.disaster_end_day + 2)
        .map(|d| analysis.deliveries_per_day[d as usize])
        .max()
        .unwrap();
    assert!(
        peak as f64 > before_avg * 3.0 && peak >= 3,
        "no delivery spike: before avg {before_avg:.2}, peak {peak}"
    );
}

#[test]
fn rescued_people_concentrate_in_the_flooded_basin() {
    let (scenario, analysis) = analyzed();
    let downtown = scenario.city.downtown_region();
    let density = |i: usize| {
        let lm = scenario
            .city
            .regions
            .landmarks_in(mobirescue::roadnet::regions::RegionId(i as u8))
            .len()
            .max(1);
        analysis.rescued_per_region[i] as f64 / lm as f64
    };
    let downtown_density = density(downtown.index());
    let max_other = (0..analysis.rescued_per_region.len())
        .filter(|&i| i != downtown.index())
        .map(density)
        .fold(0.0, f64::max);
    assert!(
        downtown_density >= max_other,
        "downtown density {downtown_density:.3} vs max other {max_other:.3} ({:?})",
        analysis.rescued_per_region
    );
}
