//! Trainer chaos suite: faults injected into the online training loop.
//!
//! Each run drives `mobirescue_serve::chaos::trainer_chaos_divergence`,
//! which arms `TrainerFault` schedules against a service running the
//! background DQN trainer and asserts, inside the harness, that
//!
//! 1. **transition conservation** holds under injected transition drops
//!    (`train.transitions_offered == accepted + shed`, and the obs
//!    counters agree with the trainer's own status),
//! 2. a flood of stale, reward-tanking candidates is fully absorbed by
//!    the rollout gates — no shard ever serves anything but the
//!    incumbent, and the registry records zero swaps, and
//! 3. a trainer that crashes at epoch boundaries respawns from its
//!    per-boundary checkpoint and finishes **bit-identical** — service
//!    snapshot, metrics, trainer status and policy checkpoint — to an
//!    unfaulted twin.
//!
//! Everything runs on a `SimClock`, so a run is a pure function of its
//! seed; the suite pins the same seed set as `tests/chaos.rs` and
//! `scripts/verify.sh`.

use mobirescue_serve::chaos::{trainer_chaos_divergence, TrainerChaosOptions};

/// Same pinned set as the ingestion/crash and rollout chaos suites.
const SEEDS: [u64; 5] = mobirescue_serve::CHAOS_SEEDS;

#[test]
fn trainer_faults_never_break_conservation_or_serve_unguarded_models() {
    for seed in SEEDS {
        let opts = TrainerChaosOptions::standard(2);
        let divergences = trainer_chaos_divergence(seed, &opts).expect("runs complete");
        assert!(
            divergences.is_empty(),
            "seed {seed} violated trainer invariants:\n{}",
            divergences.join("\n")
        );
    }
}

#[test]
fn trainer_chaos_is_deterministic() {
    let opts = TrainerChaosOptions::standard(2);
    let a = trainer_chaos_divergence(41, &opts).expect("first run");
    let b = trainer_chaos_divergence(41, &opts).expect("second run");
    assert_eq!(a, b, "trainer chaos must be a pure function of its seed");
}
