//! WAL chaos suite: kill -9 at any byte of the durable ingest journal.
//!
//! Each run drives `mobirescue_serve::chaos::wal_chaos_divergence`, which
//! arms `WalFault` schedules against a journal-backed service and
//! asserts, inside the harness, that
//!
//! 1. every injected **torn append** surfaces as a typed
//!    `ServeError::Wal(WalError::TornTail)` refusal — the request was
//!    never made durable, so it is never acked — with the conservation
//!    law `acked == dispatched + still_journaled` intact and the journal
//!    still restorable afterwards,
//! 2. **fsync stalls** cost latency but never leak into state: the
//!    stalled run's snapshot is bit-identical to an unstalled twin's,
//! 3. a process **killed at any byte offset** of the journal — at the
//!    boundary snapshot, after every post-snapshot offer, and seeded
//!    mid-record interior bytes — restores and finishes bit-identical
//!    (snapshot text, metrics, journal sequence) to a twin that never
//!    crashed, and
//! 4. an interior **bit flip** is refused at recovery with a typed
//!    `WalError::Corrupt` naming the segment and offset — never a panic,
//!    never a silent wrong replay.
//!
//! Everything runs on a `SimClock`, so a run is a pure function of its
//! seed; the suite iterates `mobirescue_serve::CHAOS_SEEDS`, the same
//! constant the chaos sweep binary and the sibling suites pin.

use mobirescue_serve::chaos::{wal_chaos_divergence, WalChaosOptions};
use mobirescue_serve::CHAOS_SEEDS;

#[test]
fn crash_at_any_journal_byte_recovers_bit_identically() {
    for seed in CHAOS_SEEDS {
        let opts = WalChaosOptions::standard(2);
        let divergences = wal_chaos_divergence(seed, &opts).expect("runs complete");
        assert!(
            divergences.is_empty(),
            "seed {seed} violated journal invariants:\n{}",
            divergences.join("\n")
        );
    }
}

#[test]
fn wal_chaos_is_deterministic() {
    let opts = WalChaosOptions::standard(2);
    let a = wal_chaos_divergence(37, &opts).expect("first run");
    let b = wal_chaos_divergence(37, &opts).expect("second run");
    assert_eq!(a, b, "wal chaos must be a pure function of its seed");
}
