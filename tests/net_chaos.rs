//! The network chaos suite: the TCP front door under seeded
//! connection-fault schedules (mid-frame disconnects, torn writes,
//! slow-loris stalls) must stay *conservative* — every request offered
//! over the wire is accounted for exactly once as acked, NACKed, or lost
//! to a connection fault, and the wire-visible NACKs reconcile with the
//! bounded queues' own shed counters. Overload is honest or it is a bug.
//!
//! The schedules come from `serve::fault` (the conn draws happen after
//! all in-process draws, so these seeds never perturb the in-process
//! chaos suite), the sockets are real, and the invariants are checked by
//! [`run_net_chaos`] itself — a seed that fails here reproduces as
//! `run_net_chaos(seed, &opts)`.

use mobirescue_net::{run_net_chaos, NetChaosOptions};

/// The pinned seed set `scripts/verify.sh` runs. Chosen so that, across
/// the set, every connection-fault kind fires at least once — asserted
/// below, so a schedule change cannot silently turn this suite into a
/// fair-weather test.
const SEEDS: [u64; 4] = [3, 11, 29, 47];

#[test]
fn conservation_holds_for_fixed_seeds() {
    let opts = NetChaosOptions::default();
    let mut kinds_seen = (0u64, 0u64, 0u64);
    for seed in SEEDS {
        let report = run_net_chaos(seed, &opts);
        assert!(
            report.ok(),
            "seed {seed} broke conservation:\n{}",
            report.summary()
        );
        assert_eq!(report.offered, opts.offers as u64, "seed {seed}");
        assert!(report.acked_ids_unique, "seed {seed}: duplicate ACK ids");
        kinds_seen.0 += report.faults.conn_disconnects;
        kinds_seen.1 += report.faults.conn_torn_writes;
        kinds_seen.2 += report.faults.conn_slow_loris;
    }
    assert!(kinds_seen.0 > 0, "no disconnect fired across the seed set");
    assert!(kinds_seen.1 > 0, "no torn write fired across the seed set");
    assert!(kinds_seen.2 > 0, "no slow-loris fired across the seed set");
}

/// Overload honesty: with retries off, every queue shed must surface as
/// exactly one wire-visible NACK(Shed) — the run's invariants include
/// `queue_shed == nacked_shed` — and a tiny queue under a request burst
/// must actually shed, so the equality is tested under real overload,
/// not vacuously.
#[test]
fn every_shed_is_a_nack_under_overload() {
    let opts = NetChaosOptions {
        offers: 90,
        epoch_every: 30, // long bursts between drains overflow capacity 4
        max_retries: 0,
        ..NetChaosOptions::default()
    };
    let mut sheds = 0u64;
    for seed in SEEDS {
        let report = run_net_chaos(seed, &opts);
        assert!(
            report.ok(),
            "seed {seed} broke overload honesty:\n{}",
            report.summary()
        );
        assert_eq!(
            report.queue_shed, report.nacked_shed,
            "seed {seed}: a shed escaped the wire"
        );
        sheds += report.nacked_shed;
    }
    assert!(
        sheds > 0,
        "no seed overloaded the queue; the gate is vacuous"
    );
}

/// A chaos run is a pure function of its seed: same seed, same wire
/// accounting, even though real sockets and threads are involved (the
/// fault schedule, the request stream, and the epoch cadence are all
/// deterministic; only timings vary).
#[test]
fn same_seed_reproduces_the_same_accounting() {
    let opts = NetChaosOptions::default();
    let a = run_net_chaos(SEEDS[0], &opts);
    let b = run_net_chaos(SEEDS[0], &opts);
    assert!(a.ok(), "{}", a.summary());
    assert_eq!(a.offered, b.offered);
    assert_eq!(a.faults.conn_disconnects, b.faults.conn_disconnects);
    assert_eq!(a.faults.conn_torn_writes, b.faults.conn_torn_writes);
    assert_eq!(a.faults.conn_slow_loris, b.faults.conn_slow_loris);
    assert_eq!(a.lost, b.lost);
    assert_eq!(a.acked + a.nacked_shed + a.nacked_invalid, a.completed);
    assert_eq!(b.acked + b.nacked_shed + b.nacked_invalid, b.completed);
}
