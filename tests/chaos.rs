//! The chaos suite: the full dispatch service under seeded fault
//! schedules must degrade gracefully, never silently.
//!
//! Each test drives `mobirescue_serve::chaos` — the same harness the
//! `chaos` bench binary sweeps — so any seed that fails a sweep drops
//! straight into a reproducible test here. Everything runs on a
//! `SimClock`: a run is a pure function of its fault plan, and these
//! tests are deterministic.

use mobirescue_serve::chaos::{crash_replay_divergence, run_chaos, ChaosOptions};
use mobirescue_serve::{
    Clock, DispatchService, FaultInjector, FaultPlan, ModelRegistry, ServeError, SimClock,
    SnapshotCorruption,
};
use std::sync::Arc;

/// The fixed seed set the suite (and `scripts/verify.sh`) pins. Chosen
/// arbitrarily; together they exercise every fault kind at least once,
/// which `chaos_invariants_hold_for_fixed_seeds` asserts.
const SEEDS: [u64; 5] = mobirescue_serve::CHAOS_SEEDS;

#[test]
fn chaos_invariants_hold_for_fixed_seeds() {
    let mut kinds_seen = (0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    for seed in SEEDS {
        let opts = ChaosOptions::seeded(seed, 6, 2);
        let outcome = run_chaos(seed, &opts).expect("chaos run completes");
        assert!(
            outcome.ok(),
            "seed {seed} broke invariants:\n{}",
            outcome.summary()
        );
        // The service finished every epoch despite the schedule.
        assert_eq!(outcome.metrics.epochs_completed, 6);
        // Degradation happens only when a degrading fault fired (the
        // harness checks the iff both ways; spot-check the direction that
        // matters most here).
        if outcome.metrics.degraded_epochs > 0 {
            assert!(outcome.counters.degrading() > 0, "seed {seed}");
        }
        let c = outcome.counters;
        kinds_seen.0 += c.drops;
        kinds_seen.1 += c.delays;
        kinds_seen.2 += c.duplicates;
        kinds_seen.3 += c.corrupts;
        kinds_seen.4 += c.stalls;
        kinds_seen.5 += c.crashes;
        kinds_seen.6 += c.swap_fails;
    }
    // The seed set is only a meaningful gate if, across it, every fault
    // kind actually fired.
    assert!(kinds_seen.0 > 0, "no drop fired across the seed set");
    assert!(kinds_seen.1 > 0, "no delay fired across the seed set");
    assert!(kinds_seen.2 > 0, "no duplicate fired across the seed set");
    assert!(kinds_seen.3 > 0, "no corrupt fired across the seed set");
    assert!(kinds_seen.4 > 0, "no stall fired across the seed set");
    assert!(kinds_seen.5 > 0, "no crash fired across the seed set");
    assert!(
        kinds_seen.6 > 0,
        "no swap failure fired across the seed set"
    );
}

#[test]
fn chaos_runs_are_deterministic() {
    let opts = ChaosOptions::seeded(23, 6, 2);
    let a = run_chaos(23, &opts).expect("first run");
    let b = run_chaos(23, &opts).expect("second run");
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.restarts, b.restarts);
    assert!(a.ok() && b.ok());
}

#[test]
fn quiet_plan_degrades_nothing() {
    let mut opts = ChaosOptions::seeded(99, 4, 2);
    opts.plan = FaultPlan::empty();
    let outcome = run_chaos(99, &opts).expect("quiet run completes");
    assert!(outcome.ok(), "{}", outcome.summary());
    assert_eq!(outcome.metrics.degraded_epochs, 0);
    assert_eq!(outcome.restarts, 0);
    assert!(!outcome.counters.any(), "no fault may fire without a plan");
}

#[test]
fn crash_recovery_is_replay_masked_bit_identical() {
    // Crash shard 0 twice and shard 1 once, including an epoch-0 crash
    // (recovery from "no checkpoint yet" restarts a fresh world, which is
    // exactly the pre-epoch-0 state). The recovered run must end with a
    // snapshot text *byte-identical* to an unfaulted twin's, because each
    // crash is consumed when it fires and the replayed epoch runs clean.
    let divergences =
        crash_replay_divergence(&[(0, 0), (2, 1), (4, 0)], 6, 2).expect("both runs complete");
    assert!(
        divergences.is_empty(),
        "crashed+recovered run diverged from the unfaulted reference:\n{}",
        divergences.join("\n")
    );
}

#[test]
fn corrupted_snapshot_writes_are_rejected_on_restore() {
    for corruption in [
        SnapshotCorruption::Truncate(12_345),
        SnapshotCorruption::BitFlip(6_789),
    ] {
        let scenario = Arc::new(mobirescue_serve::chaos::chaos_scenario());
        let injector = Arc::new(FaultInjector::new(
            FaultPlan::empty().with_snapshot_corruption(corruption),
        ));
        let mut config = mobirescue_serve::ServeConfig::new(mobirescue_sim::SimConfig::small(6));
        config.num_shards = 2;
        config.faults = Some(Arc::clone(&injector));
        let clock: Arc<SimClock> = Arc::new(SimClock::new());
        let registry = Arc::new(ModelRegistry::new(None, None));
        let service = DispatchService::start(
            Arc::clone(&scenario),
            config.clone(),
            Arc::clone(&clock) as Arc<dyn Clock>,
            Arc::clone(&registry),
        )
        .expect("service starts");
        service.run_epoch().expect("epoch runs");
        let corrupted = service.snapshot().expect("snapshot writes");
        assert_eq!(injector.counters().snapshot_corruptions, 1);
        let err = DispatchService::restore(
            Arc::clone(&scenario),
            config,
            Arc::new(SimClock::new()) as Arc<dyn Clock>,
            registry,
            &corrupted,
        )
        .err()
        .expect("corrupted snapshot must not restore");
        assert!(
            matches!(err, ServeError::BadSnapshot(_)),
            "expected a typed BadSnapshot error, got: {err}"
        );
        service.shutdown();
    }
}
