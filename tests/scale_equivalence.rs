//! SoA-equivalence pin: the struct-of-arrays refactor of `sim::engine::World`
//! (request/team arenas, flat waiting queues) must be *bit-identical* to the
//! original array-of-structs engine. These checksums were captured on the
//! pre-refactor engine (commit 9442eec) over the `medium` preset across five
//! seeds; any divergence in dispatch order, pickup order, routing, or
//! snapshot encoding changes the FNV-1a of the final world snapshot and
//! fails here.

use mobirescue_core::scenario::ScenarioConfig;
use mobirescue_disaster::hurricane::Hurricane;
use mobirescue_disaster::scenario::DisasterScenario;
use mobirescue_mobility::flow::HourlyConditions;
use mobirescue_roadnet::damage::NetworkCondition;
use mobirescue_roadnet::graph::SegmentId;
use mobirescue_sim::dispatcher::NearestRequestDispatcher;
use mobirescue_sim::engine::{fnv1a_64, World};
use mobirescue_sim::types::{RequestSpec, SimConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Hours of Florence's landfall ramp (disaster day 12 starts at hour 288;
/// the intensity ramp begins half a day earlier).
const STORM_HOUR: u32 = 276;
const COND_HOURS: u32 = 8;

/// Runs a storm-window dispatch simulation on the `medium` preset city and
/// returns the FNV-1a checksum of the final world snapshot. The snapshot
/// covers every outcome, waiting queue, team route, mission, plan, and
/// metric row — so equal checksums mean bit-identical engine behavior.
fn medium_dispatch_checksum(seed: u64) -> u64 {
    let cfg = ScenarioConfig::medium();
    let city = cfg.city.build(seed);
    let disaster = DisasterScenario::new(&city, Hurricane::florence(), seed);
    let conditions: Vec<NetworkCondition> = (0..COND_HOURS)
        .map(|h| disaster.network_condition(&city.network, STORM_HOUR + h))
        .collect();
    let conditions = HourlyConditions::from_conditions(conditions);

    let mut sim = SimConfig::small(0);
    sim.sample_positions_every_s = Some(900);
    let mut world = World::new(&city, &conditions, &sim).unwrap();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ca1e);
    let n = city.network.num_segments() as u32;
    let horizon = sim.duration_s();
    let specs: Vec<RequestSpec> = (0..48)
        .map(|_| RequestSpec {
            appear_s: rng.random_range(0..horizon * 3 / 4),
            segment: SegmentId(rng.random_range(0..n)),
        })
        .collect();
    world.schedule_requests(&specs).unwrap();

    let mut dispatcher = NearestRequestDispatcher::default();
    while world.now_s() < horizon {
        world.step(&mut dispatcher, 0.0);
    }
    fnv1a_64(&world.snapshot_text())
}

#[test]
fn medium_preset_dispatch_is_bit_identical_across_refactors() {
    // (seed, snapshot checksum) pairs captured pre-refactor.
    const PINNED: [(u64, u64); 5] = [
        (11, 0x447ba74735c8f45f),
        (22, 0x9b4b79ee1a346949),
        (33, 0x20dc7e3d12b30b2f),
        (44, 0x69401e5ad25375af),
        (55, 0x6d9da6b49e714ffd),
    ];
    for (seed, expect) in PINNED {
        let got = medium_dispatch_checksum(seed);
        assert_eq!(
            got, expect,
            "seed {seed}: snapshot checksum {got:#018x} != pinned {expect:#018x} \
             — engine behavior diverged from the pre-SoA baseline"
        );
    }
}
