//! Structural sanity checks for `.github/workflows/ci.yml`.
//!
//! The build environment has no YAML parser crate, so this validates the
//! subset of YAML that workflow files actually use: indentation-scoped
//! mappings with no tabs. It pins the structure CI depends on — all six
//! jobs exist, run the gate scripts, and cache `target/` keyed on
//! `Cargo.lock` with `restore-keys` fallbacks — so an edit that breaks
//! the pipeline fails locally, not on the runner.

use std::path::Path;

fn workflow() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(".github/workflows/ci.yml");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Leading-space count of a line (YAML indentation).
fn indent(line: &str) -> usize {
    line.len() - line.trim_start_matches(' ').len()
}

#[test]
fn workflow_is_plausible_yaml() {
    let text = workflow();
    assert!(!text.is_empty(), "ci.yml is empty");
    let mut in_block_scalar_deeper_than = None;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        assert!(!line.contains('\t'), "ci.yml:{n}: tab character in YAML");
        assert!(
            line.trim_end() == line,
            "ci.yml:{n}: trailing whitespace breaks some parsers"
        );
        // Skip the contents of `|`/`>` block scalars (multi-line run/path
        // values); they are free-form text, not mappings.
        if let Some(level) = in_block_scalar_deeper_than {
            if line.trim().is_empty() || indent(line) > level {
                continue;
            }
            in_block_scalar_deeper_than = None;
        }
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        // Mapping levels step by exactly two spaces, so every indent in a
        // workflow file is even (list items add "- " which is also two).
        assert_eq!(indent(line) % 2, 0, "ci.yml:{n}: odd indentation: {line:?}");
        let content = line.trim_start().trim_start_matches("- ");
        assert!(
            content.contains(':') || content.starts_with('-'),
            "ci.yml:{n}: expected a `key: value` mapping or list item: {line:?}"
        );
        let trimmed = line.trim_end();
        if trimmed.ends_with(": |") || trimmed.ends_with(": >") {
            in_block_scalar_deeper_than = Some(indent(line));
        }
    }
}

/// A top-level (given indent) `key:` line exists.
fn has_key_at(text: &str, indent_spaces: usize, key: &str) -> bool {
    let prefix = format!("{}{key}:", " ".repeat(indent_spaces));
    text.lines().any(|l| {
        l.starts_with(&prefix) && (l.len() == prefix.len() || l.as_bytes()[prefix.len()] == b' ')
    })
}

#[test]
fn workflow_triggers_on_push_and_pull_request() {
    let text = workflow();
    assert!(has_key_at(&text, 0, "name"), "missing top-level name:");
    assert!(has_key_at(&text, 0, "on"), "missing top-level on:");
    assert!(has_key_at(&text, 2, "push"), "missing push trigger");
    assert!(has_key_at(&text, 2, "pull_request"), "missing PR trigger");
    assert!(
        has_key_at(&text, 2, "workflow_dispatch"),
        "missing manual-dispatch trigger (re-run without an empty commit)"
    );
}

#[test]
fn superseded_runs_are_cancelled() {
    let text = workflow();
    assert!(
        has_key_at(&text, 0, "concurrency"),
        "missing top-level concurrency: block"
    );
    assert!(
        text.contains("group: ci-${{ github.ref }}"),
        "concurrency group must be per-ref so unrelated branches don't queue"
    );
    assert!(
        text.contains("cancel-in-progress: true"),
        "a newer push to the same ref must cancel the stale run"
    );
}

#[test]
fn all_jobs_run_their_gate_scripts_on_a_runner() {
    let text = workflow();
    assert!(has_key_at(&text, 0, "jobs"), "missing top-level jobs:");
    for job in [
        "verify",
        "bench-smoke",
        "loadgen-smoke",
        "scale-smoke",
        "wal-smoke",
        "train-smoke",
    ] {
        assert!(has_key_at(&text, 2, job), "missing job {job}");
    }
    assert_eq!(
        text.matches("runs-on:").count(),
        6,
        "every job needs a runs-on"
    );
    assert_eq!(
        text.matches("uses: actions/checkout@").count(),
        6,
        "every job checks out the repo"
    );
    assert!(
        text.contains("run: scripts/verify.sh"),
        "verify job must run scripts/verify.sh"
    );
    assert!(
        text.contains("scripts/check_bench.sh"),
        "bench-smoke job must run scripts/check_bench.sh"
    );
    assert!(
        text.contains("run: scripts/loadgen_smoke.sh"),
        "loadgen-smoke job must run scripts/loadgen_smoke.sh"
    );
    assert!(
        text.contains("run: scripts/train_smoke.sh"),
        "train-smoke job must run scripts/train_smoke.sh"
    );
    assert!(
        text.contains("run: scripts/wal_smoke.sh"),
        "wal-smoke job must run scripts/wal_smoke.sh"
    );
    assert!(
        text.contains("SCALE_PRESETS=medium"),
        "scale-smoke job must gate the medium preset via check_bench.sh"
    );
    assert!(
        text.contains("SCALE_GATE=0 scripts/check_bench.sh"),
        "bench-smoke must skip the scale gate (scale-smoke owns it)"
    );
}

#[test]
fn all_jobs_cache_target_keyed_on_the_lockfile() {
    let text = workflow();
    assert_eq!(
        text.matches("uses: actions/cache@").count(),
        6,
        "every job caches the build"
    );
    assert_eq!(
        text.matches("hashFiles('Cargo.lock')").count(),
        6,
        "cache keys must invalidate when Cargo.lock changes"
    );
    // `target` appears in each job's cached-path block.
    assert!(
        text.lines().filter(|l| l.trim() == "target").count() >= 6,
        "every cache must include target/"
    );
    // A lockfile bump should warm-start from the previous cache rather
    // than rebuild the world from scratch, so every cache step needs a
    // restore-keys fallback prefix.
    assert_eq!(
        text.matches("restore-keys:").count(),
        6,
        "every cache step must declare restore-keys"
    );
}
