//! Cross-crate integration: the full train → dispatch → evaluate pipeline
//! through the facade crate.

use mobirescue::core::experiment::{run_comparison, Comparison, ExperimentConfig};
use std::sync::OnceLock;

/// One shared comparison: training the models once is enough for every
/// assertion in this file.
fn small_comparison() -> &'static Comparison {
    static CMP: OnceLock<Comparison> = OnceLock::new();
    CMP.get_or_init(|| {
        let mut config = ExperimentConfig::small(42);
        config.train_episodes = 4;
        config.sim.duration_hours = 10;
        run_comparison(&config)
    })
}

#[test]
fn comparison_produces_all_three_methods() {
    let cmp = small_comparison();
    let names: Vec<&str> = cmp.results.iter().map(|m| m.name.as_str()).collect();
    assert_eq!(names, ["MobiRescue", "Rescue", "Schedule"]);
    assert!(cmp.num_requests > 0);
    for m in &cmp.results {
        assert_eq!(m.outcome.requests.len(), cmp.num_requests);
        assert!(m.outcome.dispatch_rounds > 0);
    }
}

#[test]
fn mobirescue_serves_at_least_as_well_as_ip_baselines() {
    // The headline claim (Figure 9): sub-second RL dispatch + prediction
    // serves at least as many requests timely as ~300 s integer
    // programming. (At test scale the handful of requests makes medians
    // noisy; counts are the robust statistic. The full orderings are
    // checked by the ignored medium-scale test below and by the `figures`
    // binary.)
    let cmp = small_comparison();
    let timely = |name: &str| cmp.method(name).outcome.total_timely_served();
    let mr = timely("MobiRescue");
    assert!(
        mr >= timely("Rescue") && mr >= timely("Schedule"),
        "MobiRescue {mr} vs Rescue {} / Schedule {}",
        timely("Rescue"),
        timely("Schedule")
    );
    // And it must beat the like-for-like predictive baseline on median
    // timeliness — both see the same requests, only the dispatch mechanism
    // differs.
    let median = |name: &str| {
        let c = cmp.method(name).outcome.timeliness_cdf();
        if c.is_empty() {
            f64::INFINITY
        } else {
            c.quantile(0.5)
        }
    };
    assert!(
        median("MobiRescue") < median("Rescue"),
        "MobiRescue median {} vs Rescue {}",
        median("MobiRescue"),
        median("Rescue")
    );
}

/// The full six-way ordering check of the paper's evaluation, at the scale
/// the benchmarks run at. Takes a few minutes — run explicitly with
/// `cargo test --release -p mobirescue --test end_to_end -- --ignored`.
#[test]
#[ignore = "minutes-long medium-scale reproduction; run with -- --ignored"]
fn medium_scale_reproduces_paper_orderings() {
    let cmp = run_comparison(&ExperimentConfig::medium(42));
    let timely = |name: &str| cmp.method(name).outcome.total_timely_served();
    assert!(timely("MobiRescue") > timely("Rescue"));
    assert!(timely("Rescue") > timely("Schedule"));
    let median_t = |name: &str| cmp.method(name).outcome.timeliness_cdf().quantile(0.5);
    assert!(median_t("MobiRescue") < median_t("Schedule"));
    assert!(median_t("Schedule") < median_t("Rescue"));
    let median_d = |name: &str| cmp.method(name).outcome.driving_delay_cdf().quantile(0.5);
    assert!(median_d("MobiRescue") < median_d("Rescue"));
    assert!(median_d("Rescue") < median_d("Schedule"));
    assert!(cmp.prediction_mr.mean_accuracy() > cmp.prediction_rescue.mean_accuracy());
    assert!(cmp.prediction_mr.mean_precision() > cmp.prediction_rescue.mean_precision());
}

#[test]
fn mobirescue_uses_fewer_serving_teams() {
    let cmp = small_comparison();
    let avg = |name: &str| {
        let v = cmp.method(name).outcome.avg_serving_teams_per_hour();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    assert!(
        avg("MobiRescue") < avg("Rescue") && avg("MobiRescue") < avg("Schedule"),
        "MobiRescue {:.1} vs Rescue {:.1} / Schedule {:.1}",
        avg("MobiRescue"),
        avg("Rescue"),
        avg("Schedule")
    );
}

#[test]
fn outcomes_are_internally_consistent() {
    let cmp = small_comparison();
    for m in &cmp.results {
        for r in &m.outcome.requests {
            if let Some(p) = r.picked_up_s {
                assert!(p >= r.spec.appear_s);
                assert!(r.driving_delay_s.unwrap_or(-1.0) >= 0.0);
            }
        }
        let served_by_counter: u32 = m.outcome.team_served.iter().flatten().sum();
        assert_eq!(served_by_counter as usize, m.outcome.total_served());
    }
}

#[test]
fn svm_beats_time_series_on_per_segment_prediction() {
    let cmp = small_comparison();
    assert!(
        cmp.prediction_mr.mean_precision() >= cmp.prediction_rescue.mean_precision(),
        "MR precision {:.3} vs Rescue {:.3}",
        cmp.prediction_mr.mean_precision(),
        cmp.prediction_rescue.mean_precision()
    );
}
