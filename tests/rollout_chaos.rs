//! Rollout chaos suite: poisoned checkpoints against the guarded
//! promotion pipeline.
//!
//! Each run drives `mobirescue_serve::chaos::rollout_chaos_divergence`,
//! which feeds NaN-weight, wrong-dimension, and reward-tanking
//! checkpoints into `DispatchService::submit_rollout` and asserts, inside
//! the harness, that
//!
//! 1. no epoch is ever served by an inadmissible or shadow-stage model
//!    (every shard stays on the incumbent version until a candidate
//!    clears its gates),
//! 2. every injected regression rolls back to the exact prior registry
//!    version, and
//! 3. the faulted run's end state is **byte-identical** to a twin run
//!    that never saw a poisoned checkpoint.
//!
//! Everything runs on a `SimClock`, so a run is a pure function of its
//! seed; the suite pins the same seed set as `tests/chaos.rs` and
//! `scripts/verify.sh`.

use mobirescue_serve::chaos::{rollout_chaos_divergence, RolloutChaosOptions};

/// Same pinned set as the ingestion/crash chaos suite.
const SEEDS: [u64; 5] = mobirescue_serve::CHAOS_SEEDS;

#[test]
fn poisoned_rollouts_never_serve_and_twins_stay_bit_identical() {
    for seed in SEEDS {
        let opts = RolloutChaosOptions::standard(2);
        let divergences = rollout_chaos_divergence(seed, &opts).expect("runs complete");
        assert!(
            divergences.is_empty(),
            "seed {seed} violated rollout invariants:\n{}",
            divergences.join("\n")
        );
    }
}

#[test]
fn rollout_chaos_is_deterministic() {
    let opts = RolloutChaosOptions::standard(2);
    let a = rollout_chaos_divergence(37, &opts).expect("first run");
    let b = rollout_chaos_divergence(37, &opts).expect("second run");
    assert_eq!(a, b, "rollout chaos must be a pure function of its seed");
}
