//! # MobiRescue
//!
//! A reproduction of *"MobiRescue: Reinforcement Learning based Rescue Team
//! Dispatching in a Flooding Disaster"* (ICDCS 2020).
//!
//! MobiRescue dispatches rescue teams during a flooding disaster. Every
//! dispatch period (default 5 minutes) it:
//!
//! 1. predicts the distribution of potential rescue requests per road segment
//!    with an SVM over *disaster-related factors* (precipitation, wind speed,
//!    altitude), and
//! 2. chooses a destination for every rescue team with a reinforcement
//!    learning policy that maximizes served requests while minimizing total
//!    driving delay and the number of serving teams.
//!
//! This facade crate re-exports the whole workspace. See the individual
//! crates for details:
//!
//! * [`roadnet`] — road network graph, routing, city generator, flood damage
//! * [`disaster`] — terrain, weather fields, hurricane scenarios, flood zones
//! * [`mobility`] — synthetic population traces, flow rates, ground truth
//! * [`svm`] — support vector machine (SMO) used by the request predictor
//! * [`rl`] — neural network + DQN used by the dispatcher
//! * [`solver`] — Hungarian assignment / branch-and-bound ILP for baselines
//! * [`sim`] — discrete-event rescue simulation engine and metrics
//! * [`core`] — the MobiRescue system itself plus the `Schedule` and
//!   `Rescue` baselines and the dataset-analysis pipeline
//!
//! # Quickstart
//!
//! ```
//! use mobirescue::core::scenario::ScenarioConfig;
//!
//! // A small deterministic scenario (city, hurricane, population).
//! let scenario = ScenarioConfig::small().build(42);
//! assert!(scenario.city.network.num_segments() > 0);
//! ```
//!
//! Run `cargo run --release --example quickstart` for an end-to-end demo.

pub use mobirescue_core as core;
pub use mobirescue_disaster as disaster;
pub use mobirescue_mobility as mobility;
pub use mobirescue_rl as rl;
pub use mobirescue_roadnet as roadnet;
pub use mobirescue_sim as sim;
pub use mobirescue_solver as solver;
pub use mobirescue_svm as svm;
