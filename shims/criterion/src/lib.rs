//! Offline mini-`criterion`.
//!
//! A std-only benchmark harness exposing the slice of criterion's API the
//! workspace's `benches/` use: `Criterion::bench_function`,
//! `benchmark_group` (+ `sample_size`, `finish`), `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//! Each benchmark warms up once, runs `sample_size` timed samples, and
//! prints min/median/mean wall-clock time per iteration. There is no
//! statistical analysis or HTML report — the point is that `cargo bench`
//! compiles, runs, and produces comparable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Declares how many elements/bytes one iteration processes, so the report
/// can print a rate alongside the time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over `sample_size` samples (after one warmup call).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine()); // warmup, also forces lazy setup
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let rate = throughput
        .map(|t| {
            let (n, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let per_s = n as f64 / median.as_secs_f64().max(f64::MIN_POSITIVE);
            format!("  {per_s:>12.0} {unit}")
        })
        .unwrap_or_default();
    println!(
        "{name:<48} min {min:>12.3?}  median {median:>12.3?}  mean {mean:>12.3?}{rate}  ({} samples)",
        samples.len()
    );
}

fn run_one(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    report(name, &mut bencher.samples, throughput);
}

/// The benchmark harness.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Small default: these are macro-benchmarks over full simulations;
        // criterion's 100-sample default would take hours offline.
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.default_sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        group.throughput(Throughput::Elements(42));
        group.bench_function(BenchmarkId::new("f", 7), |b| b.iter(|| black_box(7 * 6)));
        group.bench_function(BenchmarkId::from_parameter(9), |b| {
            b.iter(|| black_box(9 + 9))
        });
        group.finish();
    }
}
