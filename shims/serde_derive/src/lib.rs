//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! The workspace derives serde traits on its data types for downstream
//! consumers, but no code path in the repo invokes a serde serializer (all
//! persistence is hand-rolled text — see `svm::persist`, `rl::persist` and
//! `serve::snapshot`). With no registry access the real `serde_derive`
//! cannot be built, so these derives accept the same syntax (including
//! `#[serde(...)]` helper attributes) and expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attrs; expands to
/// nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attrs; expands to
/// nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
