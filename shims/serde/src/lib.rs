//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, and nothing in
//! the workspace actually drives a serde serializer — every on-disk format
//! is hand-rolled text (`svm::persist`, `rl::persist`, the serve crate's
//! snapshots). This crate keeps the `#[derive(Serialize, Deserialize)]`
//! annotations across the workspace compiling (they remain useful
//! documentation of which types are wire-safe) by re-exporting no-op
//! derive macros under the expected names.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
