//! Offline mini-`proptest`.
//!
//! Implements exactly the surface the workspace's property tests use —
//! `proptest! { #![proptest_config(..)] #[test] fn t(x in strategy, ..) }`,
//! integer/float range strategies, `prop::collection::vec`, tuple
//! strategies, `any::<bool>()`, and the `prop_assert*` macros — on top of
//! a deterministic RNG. There is no shrinking: a failing case panics with
//! the sampled inputs' debug representation so it can be reproduced
//! directly. Case streams are a pure function of the test name and case
//! index, so failures are stable across runs.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// Per-test configuration (only the knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The RNG handed to strategies while sampling one case.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Deterministic runner for `(test name, case index)`.
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        Self {
            rng: StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9)),
        }
    }

    /// The case's random stream.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Samples one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().random_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().random_range(self.clone())
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.sample(runner),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Samples an arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().random()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.rng().random()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy wrapper produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod prop {
    /// Vec strategies.
    pub mod collection {
        use super::super::{Strategy, TestRunner};
        use rand::RngExt;
        use std::ops::Range;

        /// Number of elements a [`vec`] strategy generates: a fixed size
        /// or a uniformly drawn one.
        #[derive(Debug, Clone)]
        pub enum SizeRange {
            /// Exactly this many elements.
            Exact(usize),
            /// Uniform in `[start, end)`.
            Span(usize, usize),
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange::Exact(n)
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                SizeRange::Span(r.start, r.end)
            }
        }

        /// Strategy for vectors of `element` with `size` elements.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                let n = match self.size {
                    SizeRange::Exact(n) => n,
                    SizeRange::Span(a, b) => runner.rng().random_range(a..b.max(a + 1)),
                };
                (0..n).map(|_| self.element.sample(runner)).collect()
            }
        }
    }
}

/// Everything a property-test module imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary,
        ProptestConfig, Strategy, TestRunner,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Declares property tests.
///
/// Each `fn name(arg in strategy, ..) { body }` becomes a `#[test]`
/// running `cases` deterministic random cases; a failing case panics with
/// the sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@tests ($cfg:expr) ) => {};
    (
        @tests ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut runner =
                    $crate::TestRunner::deterministic(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut runner);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body }),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {case}/{} failed: {inputs}",
                        config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs(
            n in 2usize..6,
            xs in prop::collection::vec(-1.0f64..1.0, 8),
            pair in (any::<bool>(), 0u32..10),
        ) {
            prop_assert!((2..6).contains(&n));
            prop_assert_eq!(xs.len(), 8);
            prop_assert!(xs.iter().all(|x| (-1.0..1.0).contains(x)));
            prop_assert!(pair.1 < 10);
        }

        #[test]
        fn spans_vary(sizes in prop::collection::vec(0u64..100, 1..10)) {
            prop_assert!(!sizes.is_empty() && sizes.len() < 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRunner::deterministic("t", 3);
        let mut b = TestRunner::deterministic("t", 3);
        let s = prop::collection::vec(0u32..1_000, 5);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
