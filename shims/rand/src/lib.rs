//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the thin slice of `rand`'s API it actually uses: a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64), the
//! [`SeedableRng::seed_from_u64`] constructor, and the [`RngExt`] helpers
//! `random`, `random_bool` and `random_range`. Streams are stable across
//! runs and platforms — simulation seeds reproduce exactly.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits, the widest mantissa f64 can hold exactly.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for
            // the xoshiro family.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types drawable uniformly over their "natural" domain by
/// [`RngExt::random`] — the whole value range for integers, `[0, 1)` for
/// floats, a fair coin for `bool`.
pub trait StandardDraw: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDraw for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl StandardDraw for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

impl StandardDraw for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardDraw for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform draw over a half-open or closed interval. The
/// per-type logic lives here so [`SampleRange`] can be a *single* blanket
/// impl — that is what lets the compiler unify an untyped integer-literal
/// range (`rng.random_range(90..700)`) with the surrounding arithmetic.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[start, end)` (`inclusive = false`) or
    /// `[start, end]` (`inclusive = true`).
    ///
    /// # Panics
    ///
    /// Panics when the interval is empty.
    fn sample_in<R: RngCore + ?Sized>(start: Self, end: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (end as i128 - start as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample empty range");
                // Multiply-shift bounded draw (Lemire); the span of any
                // primitive range used here fits in u64.
                let span64 = (span as u128).min(u64::MAX as u128) as u64;
                let hi = ((rng.next_u64() as u128 * span64 as u128) >> 64) as u64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(start <= end, "cannot sample empty range");
                } else {
                    assert!(start < end, "cannot sample empty range");
                }
                let u = rng.next_f64() as $t;
                start + u * (end - start)
            }
        }
    )*};
}
sample_uniform_float!(f32, f64);

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// Convenience draws over any [`RngCore`].
pub trait RngExt: RngCore {
    /// A value drawn from `T`'s standard distribution (see
    /// [`StandardDraw`]).
    fn random<T: StandardDraw>(&mut self) -> T {
        T::draw(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A value drawn uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.random_range(-2.5..2.5);
            assert!((-2.5..2.5).contains(&y));
            let z: u32 = rng.random_range(5..=5);
            assert_eq!(z, 5);
            let f: f64 = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut counts = [0usize; 8];
        for _ in 0..8_000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for c in counts {
            assert!((800..1_200).contains(&c), "bucket count {c}");
        }
    }
}
